"""Asyncio HTTP/1.1 front end for the sweep service (stdlib only).

A deliberately small server -- request line, headers, Content-Length
body -- because its job is narrow: accept sweep specs as JSON, stream
newline-delimited JSON back, and expose counters.  Routes:

``POST /sweep``
    Body: a sweep spec (see :func:`repro.serve.service.expand_sweep`).
    Response: ``application/x-ndjson``, chunked -- one ``cell`` line per
    resolved cell *as it completes* (ragged order, ``index`` gives the
    spec position), then one ``summary`` line.  Cell lines carry
    headline metrics plus, unless the request set
    ``"include_results": false``, the full pickled
    :class:`~repro.sim.simulator.SimResult` (base64) so clients
    reconstruct bit-identical results.
``GET /stats``
    Service + store counters as JSON (hits/misses/evictions/in-flight
    dedupes, pool shape, uptime; cluster nodes add ring + queue blocks).
``GET /healthz``
    Liveness probe.

Cluster-mode routes (docs/SERVICE.md "Cluster mode"):

``POST /cell``
    One cell in wire format; resolved *on this node* and returned as a
    single JSON object with its content ``key`` and pickled result.
    This is the peer-forwarding hop: the ``X-Repro-Hops`` header counts
    hops taken, and any request arriving with hops >= 1 is pinned local
    (so a cell travels at most one hop, loops impossible).  ``/sweep``
    honours the same header.
``GET /store/keys`` / ``POST /store/fetch``
    Warm-handoff transport: list this node's content addresses; fetch a
    batch of entries as raw base64 pickle bytes, each with a sha-256 of
    the bytes the receiver verifies before publishing.
``POST /jobs`` / ``GET /jobs/<id>`` / ``GET /jobs/<id>/results``
    The persistent job queue (:mod:`repro.serve.queue`): submit a sweep
    durably, poll its progress, stream its finished cells as NDJSON out
    of the content store (``?results=0`` drops payloads).

Malformed specs get a 400 with a JSON error body; an internal failure
mid-stream becomes a terminal ``{"kind": "error"}`` line (the status
line has already been sent).  One connection handles one request
(``Connection: close``), which keeps the protocol state machine
trivial -- concurrency comes from asyncio, not keep-alive.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import pickle

from repro.serve.queue import JobError
from repro.serve.service import (
    CellOutcome,
    SweepRequestError,
    SweepService,
    expand_sweep,
    spec_from_dict,
    summarize,
)

#: Largest /store/fetch batch (warm handoff pulls in chunks anyway).
MAX_FETCH_KEYS = 256

#: Largest accepted request body (sweep specs are small; 8 MiB leaves
#: room for huge explicit cell lists without inviting memory abuse).
MAX_BODY = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def cell_line(
    index: int, outcome: CellOutcome, include_results: bool
) -> dict:
    """The NDJSON line for one resolved cell."""
    line = {
        "kind": "cell",
        "index": index,
        "key": outcome.key,
        "workload": list(outcome.spec.workload)
        if isinstance(outcome.spec.workload, tuple)
        else outcome.spec.workload,
        "mechanism": outcome.spec.config.mechanism,
        "cycles": outcome.result.cycles,
        "retired_user": outcome.result.retired_user,
        "committed_fills": outcome.result.committed_fills,
        "ipc": round(outcome.result.ipc, 6),
        "cached": outcome.cached,
        "deduped": outcome.deduped,
    }
    if include_results:
        line["result_b64"] = base64.b64encode(
            pickle.dumps(outcome.result)
        ).decode("ascii")
    return line


class SweepHTTPServer:
    """Bind a :class:`SweepService` to a TCP port."""

    def __init__(
        self,
        service: SweepService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else SweepService()
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        # Crash recovery: any job left incomplete by the previous
        # incarnation starts draining again before we take traffic.
        self.service.resume_jobs()
        if self.service.peers and self.service.handoff_on_start:
            await self.service.warm_handoff()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    # -- one connection, one request ------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, body, headers = await self._read_request(
                    reader
                )
            except _HTTPError as exc:
                await self._respond_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            hops = _parse_hops(headers.get("x-repro-hops"))
            target, _, query = target.partition("?")
            if target == "/healthz" and method == "GET":
                await self._respond_json(writer, 200, {"ok": True})
            elif target == "/stats" and method == "GET":
                await self._respond_json(
                    writer, 200, self.service.stats_dict()
                )
            elif target == "/sweep":
                if method != "POST":
                    await self._respond_json(
                        writer, 405, {"error": "POST /sweep"}
                    )
                else:
                    await self._handle_sweep(writer, body, hops)
            elif target == "/cell" and method == "POST":
                await self._handle_cell(writer, body)
            elif target == "/store/keys" and method == "GET":
                keys = await asyncio.get_running_loop().run_in_executor(
                    None, self.service.store.keys
                )
                await self._respond_json(writer, 200, {"keys": keys})
            elif target == "/store/fetch" and method == "POST":
                await self._handle_store_fetch(writer, body)
            elif target == "/jobs" and method == "POST":
                await self._handle_job_submit(writer, body)
            elif target.startswith("/jobs/"):
                await self._handle_job_get(writer, method, target, query)
            else:
                await self._respond_json(
                    writer, 404, {"error": f"no route {method} {target}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-stream; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, dict[str, str]]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HTTPError(400, "request line too long") from None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HTTPError(400, "malformed request line")
        method, target, _version = parts
        content_length = 0
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HTTPError(400, "bad Content-Length") from None
                if content_length < 0:
                    # A negative length would blow up readexactly below,
                    # dropping the connection with no response.
                    raise _HTTPError(400, "bad Content-Length")
        if content_length > MAX_BODY:
            raise _HTTPError(413, f"body over {MAX_BODY} bytes")
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, target, body, headers

    async def _handle_sweep(
        self, writer: asyncio.StreamWriter, body: bytes, hops: int = 0
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond_json(
                writer, 400, {"error": f"body is not JSON: {exc}"}
            )
            return
        try:
            specs, options = expand_sweep(payload)
        except SweepRequestError as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})
            return

        await self._send_headers(
            writer,
            200,
            {
                "Content-Type": "application/x-ndjson",
                "Transfer-Encoding": "chunked",
            },
        )
        outcomes: list[CellOutcome | None] = [None] * len(specs)
        try:
            async for index, outcome in self.service.stream_cells(
                specs, warm=options["warm"], forward=hops < 1
            ):
                outcomes[index] = outcome
                await self._send_chunk(
                    writer,
                    cell_line(index, outcome, options["include_results"]),
                )
            await self._send_chunk(
                writer, summarize([o for o in outcomes if o is not None])
            )
        except Exception as exc:  # noqa: BLE001 - stream must terminate
            await self._send_chunk(
                writer,
                {"kind": "error", "error": f"{type(exc).__name__}: {exc}"},
            )
        await self._end_chunks(writer)

    # -- cluster routes --------------------------------------------------
    async def _handle_cell(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        """The peer-forwarding hop: resolve one cell locally.

        ``forward=False`` always -- a /cell request *is* the forwarded
        hop, so re-forwarding is what the hop bound forbids.  The full
        pickled result always rides back: the caller exists to hand it
        to its own waiters.
        """
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            spec = spec_from_dict(payload)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond_json(
                writer, 400, {"error": f"body is not JSON: {exc}"}
            )
            return
        except SweepRequestError as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        try:
            outcome = None
            async for _, outcome in self.service.stream_cells(
                [spec], forward=False
            ):
                pass
            assert outcome is not None
        except Exception as exc:  # noqa: BLE001 - peer must get an answer
            await self._respond_json(
                writer,
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
            return
        await self._respond_json(writer, 200, cell_line(0, outcome, True))

    async def _handle_store_fetch(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond_json(
                writer, 400, {"error": f"body is not JSON: {exc}"}
            )
            return
        keys = payload.get("keys") if isinstance(payload, dict) else None
        if not isinstance(keys, list) or not all(
            isinstance(k, str) for k in keys
        ):
            await self._respond_json(
                writer, 400, {"error": "body must be {'keys': [...]}"}
            )
            return
        if len(keys) > MAX_FETCH_KEYS:
            await self._respond_json(
                writer,
                413,
                {"error": f"at most {MAX_FETCH_KEYS} keys per fetch"},
            )
            return
        loop = asyncio.get_running_loop()
        entries: dict[str, dict[str, str]] = {}
        for key in keys:
            data = await loop.run_in_executor(
                None, self.service.store.read_raw, key
            )
            if data is not None:
                # The content address hashes the spec, not the bytes;
                # the digest is what lets the receiver verify the
                # payload itself before publishing it.
                entries[key] = {
                    "data": base64.b64encode(data).decode("ascii"),
                    "sha256": hashlib.sha256(data).hexdigest(),
                }
        await self._respond_json(writer, 200, {"entries": entries})

    async def _handle_job_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond_json(
                writer, 400, {"error": f"body is not JSON: {exc}"}
            )
            return
        try:
            await self._respond_json(
                writer, 200, self.service.submit_job(payload)
            )
        except SweepRequestError as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})

    async def _handle_job_get(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        query: str,
    ) -> None:
        if method != "GET":
            await self._respond_json(writer, 405, {"error": "GET /jobs/..."})
            return
        parts = target.split("/")  # ["", "jobs", "<id>"(, "results")]
        job_id = parts[2] if len(parts) > 2 else ""
        want_results = len(parts) == 4 and parts[3] == "results"
        if not job_id or len(parts) > 4 or (len(parts) == 4 and not want_results):
            await self._respond_json(
                writer, 404, {"error": f"no route GET {target}"}
            )
            return
        try:
            if not want_results:
                await self._respond_json(
                    writer, 200, self.service.job_status(job_id)
                )
                return
            include = "results=0" not in query
            # Status is resolved before the stream starts so an unknown
            # id is a clean 404, not a broken chunk stream.
            self.service.job_state(job_id)
            await self._send_headers(
                writer,
                200,
                {
                    "Content-Type": "application/x-ndjson",
                    "Transfer-Encoding": "chunked",
                },
            )
            try:
                async for line in self.service.stream_job_results(
                    job_id, include_results=include
                ):
                    await self._send_chunk(writer, line)
            except Exception as exc:  # noqa: BLE001 - stream must terminate
                await self._send_chunk(
                    writer,
                    {"kind": "error", "error": f"{type(exc).__name__}: {exc}"},
                )
            await self._end_chunks(writer)
        except (JobError, KeyError):
            await self._respond_json(
                writer, 404, {"error": f"no job {job_id!r}"}
            )
        except SweepRequestError as exc:
            await self._respond_json(writer, 400, {"error": str(exc)})

    # -- wire helpers ----------------------------------------------------
    @staticmethod
    async def _send_headers(
        writer: asyncio.StreamWriter, status: int, headers: dict[str, str]
    ) -> None:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    @staticmethod
    async def _send_chunk(writer: asyncio.StreamWriter, obj: dict) -> None:
        data = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data)
        writer.write(b"\r\n")
        await writer.drain()

    @staticmethod
    async def _end_chunks(writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, obj: dict
    ) -> None:
        data = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        await self._send_headers(
            writer,
            status,
            {
                "Content-Type": "application/json",
                "Content-Length": str(len(data)),
            },
        )
        writer.write(data)
        await writer.drain()


def _parse_hops(raw: str | None) -> int:
    """The ``X-Repro-Hops`` header (absent/garbage = 0 = an origin
    request, eligible for forwarding)."""
    try:
        return max(0, int(raw or 0))
    except ValueError:
        return 0


class _HTTPError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
