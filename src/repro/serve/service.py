"""The sweep service: sharded pools, in-flight dedupe, warm lineage.

:class:`SweepService` is the long-running heart of ``repro-serve``.  It
accepts sweep specs (a suite x mechanism x config grid, or an explicit
cell list), expands and validates them into
:class:`~repro.sim.parallel.CellSpec` cells, and resolves every cell
through three layers, cheapest first:

1. the **content-addressed store** (:mod:`repro.serve.store`) -- a warm
   cell costs one pickle read;
2. the **in-flight table** -- a cell some other request is already
   simulating is awaited, not re-run, so N clients asking for the same
   cell cost one simulation (the ``inflight_hits`` counter);
3. in cluster mode, the **ring** -- a cell whose consistent-hash owner
   (:mod:`repro.serve.ring`) is another node is proxied there over one
   hop and the result verified against its content address; an
   unreachable owner degrades to local execution;
4. the **worker pools** -- remaining cells are sharded by content
   address across one or more persistent ``ProcessPoolExecutor`` pools
   and claimed in engine batches
   (:func:`~repro.sim.parallel.run_cell_batch`), exactly like the
   one-shot runner, so results are bit-identical to ``run_cells`` by
   construction.

Sweeps bigger than one connection's patience become persistent *jobs*
(:mod:`repro.serve.queue`): submitted durably, drained in the
background through the same resolution layers, resumable after
``kill -9`` with zero lost or duplicated cells.

Warm-checkpoint lineage rides along: a sweep submitted with
``"warm": true`` is rewritten through
:func:`~repro.sim.parallel.derive_warm_cells`, so a grid sharing a
workload-family prefix with anything previously simulated (served or
local) starts from the saved warm snapshot instead of re-warming, and
the checkpoint hash keys the cell's content address.

Results are deterministic simulations, so every layer is transparent:
*where* a cell's result came from (store, another request's in-flight
run, a pool worker, or the serial fallback) never changes *what* it is.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import AsyncIterator

from repro.serve.queue import JobQueue, JobState
from repro.serve.ring import HashRing
from repro.serve.store import ContentStore, _env_int
from repro.sim.config import MECHANISMS, FUPool, MachineConfig
from repro.sim.parallel import (
    CellSpec,
    _worker_env,
    _worker_init,
    derive_warm_cells,
    pool_batch_size,
    run_cell,
    run_cell_batch,
)
from repro.sim.simulator import SimResult
from repro.workloads.suite import BENCHMARK_NAMES


class SweepRequestError(ValueError):
    """A malformed or oversized sweep spec (an HTTP 400, not a crash)."""


# ----------------------------------------------------------------------
# Sweep-spec codec: JSON <-> CellSpec, validated for the trust boundary.

def _build_dataclass(cls, data: dict, where: str):
    if not isinstance(data, dict):
        raise SweepRequestError(f"{where} must be an object, got {data!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise SweepRequestError(
            f"unknown {where} key(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(names))}"
        )
    try:
        return cls(**data)
    except (TypeError, ValueError) as exc:
        raise SweepRequestError(f"bad {where}: {exc}") from None


def config_to_dict(config: MachineConfig) -> dict:
    """JSON-able form of a machine configuration (asdict, recursively)."""
    return dataclasses.asdict(config)


def config_from_dict(data: dict) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from JSON, rejecting unknown
    keys and bad values with :class:`SweepRequestError`."""
    from repro.exceptions.limits import LimitKnobs
    from repro.memory.hierarchy import HierarchyConfig

    if not isinstance(data, dict):
        raise SweepRequestError(f"config must be an object, got {data!r}")
    data = dict(data)
    if isinstance(data.get("fu_pool"), dict):
        data["fu_pool"] = _build_dataclass(FUPool, data["fu_pool"], "fu_pool")
    if isinstance(data.get("hierarchy"), dict):
        data["hierarchy"] = _build_dataclass(
            HierarchyConfig, data["hierarchy"], "hierarchy"
        )
    if isinstance(data.get("limits"), dict):
        data["limits"] = _build_dataclass(LimitKnobs, data["limits"], "limits")
    return _build_dataclass(MachineConfig, data, "config")


def _check_workload(workload) -> str | tuple[str, ...]:
    names = (
        (workload,) if isinstance(workload, str) else tuple(workload or ())
    )
    if not names:
        raise SweepRequestError("workload must be a name or list of names")
    for name in names:
        if name not in BENCHMARK_NAMES:
            raise SweepRequestError(
                f"unknown workload {name!r}; known: "
                f"{', '.join(BENCHMARK_NAMES)}"
            )
    return names[0] if isinstance(workload, str) else names


def _check_length(value, name: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise SweepRequestError(
            f"{name} must be a non-negative integer, got {value!r}"
        )
    return value


def spec_to_dict(spec: CellSpec) -> dict:
    """JSON-able form of one cell (the client's wire format)."""
    return {
        "workload": list(spec.workload)
        if isinstance(spec.workload, tuple)
        else spec.workload,
        "config": config_to_dict(spec.config),
        "user_insts": spec.user_insts,
        "warmup_insts": spec.warmup_insts,
        "max_cycles": spec.max_cycles,
        "warm_hash": spec.warm_hash,
    }


def spec_from_dict(data: dict) -> CellSpec:
    """Rebuild one validated :class:`CellSpec` from its wire format.

    ``warm_from`` is deliberately not accepted: a checkpoint *location*
    is meaningless (and unsafe to trust) across the HTTP boundary.  A
    client that wants warm sharing sets the sweep-level ``warm`` flag
    and lets the service derive its own checkpoints.
    """
    if not isinstance(data, dict):
        raise SweepRequestError(f"cell must be an object, got {data!r}")
    allowed = {
        "workload", "config", "user_insts", "warmup_insts", "max_cycles",
        "warm_hash",
    }
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SweepRequestError(f"unknown cell key(s) {', '.join(unknown)}")
    if "workload" not in data:
        raise SweepRequestError("cell is missing its workload")
    warm_hash = data.get("warm_hash")
    if warm_hash is not None and not isinstance(warm_hash, str):
        raise SweepRequestError(f"warm_hash must be a string, got {warm_hash!r}")
    return CellSpec(
        workload=_check_workload(data["workload"]),
        config=config_from_dict(data.get("config") or {}),
        user_insts=_check_length(data.get("user_insts", 12_000), "user_insts"),
        warmup_insts=_check_length(
            data.get("warmup_insts", 3_000), "warmup_insts"
        ),
        max_cycles=_check_length(
            data.get("max_cycles", 8_000_000), "max_cycles"
        ),
        warm_hash=warm_hash,
    )


def max_request_cells() -> int:
    """Largest grid one request may expand to (``REPRO_SERVE_MAX_CELLS``,
    default 4096; 0 = unlimited)."""
    return _env_int("REPRO_SERVE_MAX_CELLS", 4096)


def expand_sweep(payload: dict) -> tuple[list[CellSpec], dict]:
    """Validate a sweep request and expand it into cells.

    Two shapes are accepted: a *grid* (``workloads`` x ``mechanisms`` x
    ``configs`` with shared run lengths) and an explicit ``cells`` list
    (the experiment clients' shape).  Returns ``(specs, options)`` where
    options carries the request-level flags (``warm``,
    ``include_results``).
    """
    if not isinstance(payload, dict):
        raise SweepRequestError("sweep spec must be a JSON object")
    allowed = {
        "cells", "workloads", "mechanisms", "configs",
        "user_insts", "warmup_insts", "max_cycles",
        "warm", "include_results",
    }
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise SweepRequestError(
            f"unknown sweep key(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(allowed))}"
        )
    options = {
        "warm": bool(payload.get("warm", False)),
        "include_results": bool(payload.get("include_results", True)),
    }

    if "cells" in payload:
        cells = payload["cells"]
        if not isinstance(cells, list) or not cells:
            raise SweepRequestError("cells must be a non-empty list")
        specs = [spec_from_dict(cell) for cell in cells]
    else:
        workloads = payload.get("workloads")
        if not isinstance(workloads, list) or not workloads:
            raise SweepRequestError(
                "a grid sweep needs a non-empty workloads list"
            )
        mechanisms = payload.get("mechanisms", ["multithreaded"])
        if not isinstance(mechanisms, list) or not mechanisms:
            raise SweepRequestError("mechanisms must be a non-empty list")
        for mech in mechanisms:
            if mech not in MECHANISMS:
                raise SweepRequestError(
                    f"unknown mechanism {mech!r}; known: "
                    f"{', '.join(MECHANISMS)}"
                )
        configs = payload.get("configs", [{}])
        if not isinstance(configs, list) or not configs:
            raise SweepRequestError("configs must be a non-empty list")
        user_insts = _check_length(payload.get("user_insts", 12_000), "user_insts")
        warmup = _check_length(payload.get("warmup_insts", 3_000), "warmup_insts")
        max_cycles = _check_length(
            payload.get("max_cycles", 8_000_000), "max_cycles"
        )
        specs = []
        for workload in workloads:
            checked = _check_workload(workload)
            for overrides in configs:
                for mech in mechanisms:
                    config = config_from_dict(
                        {**(overrides or {}), "mechanism": mech}
                    )
                    specs.append(
                        CellSpec(
                            workload=checked,
                            config=config,
                            user_insts=user_insts,
                            warmup_insts=warmup,
                            max_cycles=max_cycles,
                        )
                    )
    limit = max_request_cells()
    if limit and len(specs) > limit:
        raise SweepRequestError(
            f"sweep expands to {len(specs)} cells, over the "
            f"REPRO_SERVE_MAX_CELLS limit of {limit}"
        )
    return specs, options


# ----------------------------------------------------------------------

@dataclass
class CellOutcome:
    """One resolved cell and how it was resolved."""

    spec: CellSpec
    result: SimResult
    key: str
    #: Served straight from the content-addressed store.
    cached: bool = False
    #: Shared a simulation another request (or an earlier duplicate in
    #: this one) already had in flight.
    deduped: bool = False


def default_pools() -> int:
    """Shard count from ``REPRO_SERVE_POOLS`` (default 1; 0 = inline
    thread execution, for tests and tiny deployments)."""
    return _env_int("REPRO_SERVE_POOLS", 1)


def default_workers() -> int:
    """Workers per pool from ``REPRO_SERVE_WORKERS`` (0/unset = CPU
    count split across pools)."""
    return _env_int("REPRO_SERVE_WORKERS", 0)


class SweepService:
    """Long-running sweep resolver over persistent worker pools.

    Single-event-loop object: every public coroutine must run on the
    loop the service was started on.  Simulation and store I/O are
    pushed off the loop (process pools and the default thread pool), so
    the loop itself only routes cells and streams results.
    """

    def __init__(
        self,
        store: ContentStore | None = None,
        pools: int | None = None,
        workers: int | None = None,
        node_id: str | None = None,
        peers: list[str] | tuple[str, ...] = (),
        queue: JobQueue | None = None,
        handoff: bool = False,
    ) -> None:
        self.store = store if store is not None else ContentStore()
        self.pools = default_pools() if pools is None else pools
        self.workers = default_workers() if workers is None else workers
        self.started = time.time()
        self.requests = 0
        self.cells_requested = 0
        self.cells_simulated = 0
        #: content address -> future resolving to a SimResult.
        self._inflight: dict[str, asyncio.Future] = {}
        self._executors: list[Executor | None] | None = None
        # -- cluster membership (docs/SERVICE.md "Cluster mode") --------
        #: This node's advertised base URL; None = single-host mode.
        self.node_id = node_id
        self.peers = [p for p in peers if p and p != node_id]
        #: Placement is pure ring arithmetic over the member list, so
        #: every node routes identically with zero coordination.
        self.ring: HashRing | None = (
            HashRing([node_id, *self.peers])
            if node_id and self.peers
            else None
        )
        self.cells_owned = 0
        self.cells_forwarded = 0
        self.forward_fallbacks = 0
        self.handoff_pulled = 0
        if self.node_id:
            # Manifests published by this store now carry the node's
            # identity + routing counters (obs.manifest "node" block).
            self.store.node_info = self.node_info
        #: Pull owned entries from peers when the HTTP server starts.
        self.handoff_on_start = handoff
        #: Persistent job queue (None = /jobs disabled).
        self.queue = queue
        self._job_tasks: dict[str, asyncio.Task] = {}

    # -- pools ----------------------------------------------------------
    def _shards(self) -> list[Executor | None]:
        """The persistent executors, one per shard (lazily created).
        ``None`` entries mean "run on the default thread executor" --
        the inline mode used when ``pools == 0``."""
        if self._executors is None:
            if self.pools <= 0:
                self._executors = [None]
            else:
                per_pool = self.workers or max(
                    1, (os.cpu_count() or 1) // self.pools
                )
                self._executors = [
                    self._make_pool(per_pool) for _ in range(self.pools)
                ]
        return self._executors

    @staticmethod
    def _make_pool(workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(_worker_env(),),
        )

    def _shard_for(self, key: str) -> int:
        """Stable shard of a content address (hex-prefix mod pools)."""
        shards = self._shards()
        return int(key[:8], 16) % len(shards)

    def close(self) -> None:
        """Tear down the worker pools and job drains (idempotent).

        Job *state* survives closing by construction -- everything
        durable is already on disk -- so cancelled drains resume on the
        next start (:meth:`resume_jobs`).
        """
        for task in self._job_tasks.values():
            if not task.done():
                task.cancel()
        self._job_tasks = {}
        if self._executors:
            for executor in self._executors:
                if executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
        self._executors = None

    # -- resolution -----------------------------------------------------
    async def stream_cells(
        self,
        specs: list[CellSpec],
        warm: bool = False,
        forward: bool = True,
    ) -> AsyncIterator[tuple[int, CellOutcome]]:
        """Resolve ``specs``, yielding ``(index, outcome)`` as each cell
        completes (ragged order; indices are spec positions).

        In cluster mode, cells whose ring owner is another node are
        proxied there (``forward=False`` pins everything local -- the
        handler for already-forwarded requests, which is what bounds
        every cell to at most one hop).
        """
        loop = asyncio.get_running_loop()
        if warm:
            # Warm derivation builds checkpoints (serial simulations);
            # off the loop.  Existing checkpoints make this a hash probe.
            specs = await loop.run_in_executor(None, derive_warm_cells, specs)
        self.requests += 1
        self.cells_requested += len(specs)

        ready: list[tuple[int, CellOutcome]] = []
        waiting: list[tuple[int, CellSpec, str, bool, asyncio.Future]] = []
        to_start: list[tuple[str, CellSpec]] = []
        to_forward: list[tuple[str, CellSpec, str]] = []
        for index, spec in enumerate(specs):
            key = self.store.key(spec)
            hit = await loop.run_in_executor(None, self.store.get, spec)
            if hit is not None:
                ready.append(
                    (index, CellOutcome(spec, hit, key, cached=True))
                )
                continue
            future = self._inflight.get(key)
            if future is not None:
                # Someone (another request, or an earlier duplicate in
                # this one) is already simulating this exact cell.
                self.store.stats.inflight_hits += 1
                waiting.append((index, spec, key, True, future))
                continue
            future = loop.create_future()
            self._inflight[key] = future
            owner = self._owner_of(key) if forward else None
            if owner is not None:
                to_forward.append((key, spec, owner))
            else:
                if self.ring is not None:
                    self.cells_owned += 1
                to_start.append((key, spec))
            waiting.append((index, spec, key, False, future))

        self._launch(await self._attach_wire_warm(to_start))
        for key, spec, owner in to_forward:
            asyncio.ensure_future(self._forward_cell(key, spec, owner))

        for item in ready:
            yield item
        pending = {
            asyncio.ensure_future(self._await_cell(*entry)): None
            for entry in waiting
        }
        while pending:
            done, _ = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                del pending[task]
                yield task.result()

    async def run_cells(
        self, specs: list[CellSpec], warm: bool = False
    ) -> list[CellOutcome]:
        """Resolve ``specs`` and return outcomes in spec order."""
        outcomes: list[CellOutcome | None] = [None] * len(specs)
        async for index, outcome in self.stream_cells(specs, warm=warm):
            outcomes[index] = outcome
        return outcomes  # type: ignore[return-value]

    async def _attach_wire_warm(
        self, to_start: list[tuple[str, CellSpec]]
    ) -> list[tuple[str, CellSpec]]:
        """Rehydrate *wire-warm* cells (a ``warm_hash`` without a local
        checkpoint) before they run here.

        ``warm_from`` is a local path and never crosses the HTTP
        boundary, so a forwarded warm cell arrives as its hash alone.
        Running it as-is would simulate **cold** yet file the result
        under the warm-keyed content address -- the same address would
        hold different bits depending on routing.  Instead the
        checkpoint is re-derived locally (deterministic, so usually a
        cache probe) and the derived digest must equal the wire one; a
        cell whose checkpoint cannot be reproduced fails its waiters
        rather than poisoning the store.
        """
        loop = asyncio.get_running_loop()
        out: list[tuple[str, CellSpec]] = []
        for key, spec in to_start:
            if spec.warm_hash is None or spec.warm_from is not None:
                out.append((key, spec))
                continue
            try:
                rehydrated = await loop.run_in_executor(
                    None, self._rederive_warm, spec
                )
            except Exception as exc:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
                continue
            out.append((key, rehydrated))
        return out

    @staticmethod
    def _rederive_warm(spec: CellSpec) -> CellSpec:
        """(Thread executor.)  Rebuild the warm checkpoint a wire-warm
        cell refers to and attach it, verifying the digest."""
        if not spec.warmup_insts:
            raise SweepRequestError(
                "cell carries a warm_hash but no warmup to derive it from"
            )
        derived = derive_warm_cells(
            [dataclasses.replace(spec, warm_hash=None)]
        )[0]
        if derived.warm_hash != spec.warm_hash:
            raise SweepRequestError(
                f"cannot reproduce warm checkpoint {spec.warm_hash}: "
                f"derived {derived.warm_hash}"
            )
        return derived

    # -- cluster routing ------------------------------------------------
    def _owner_of(self, key: str) -> str | None:
        """The peer that owns ``key``, or None when this node does (or
        when there is no cluster)."""
        if self.ring is None:
            return None
        owner = self.ring.owner(key)
        return None if owner == self.node_id else owner

    async def _forward_cell(
        self, key: str, spec: CellSpec, owner: str
    ) -> None:
        """Proxy one cell to its ring owner; fall back to local
        execution if the owner is unreachable or misbehaves.

        The returned result must file under the *same* content address
        we computed -- that equality is the proof the owner simulated
        the identical cell under identical sources, and what makes
        forwarding transparent to every waiter.
        """
        from repro.serve.client import ServeError, forward_cell

        loop = asyncio.get_running_loop()
        try:
            remote_key, result = await loop.run_in_executor(
                None, forward_cell, owner, spec_to_dict(spec)
            )
            if remote_key != key:
                raise ServeError(
                    f"owner {owner} returned key {remote_key}, wanted {key}"
                )
        except Exception:
            # Owner death (or disagreement) degrades to local execution:
            # any node can resolve any cell, the ring is only the fast
            # path that keeps stores disjoint-ish.
            self.forward_fallbacks += 1
            if self.ring is not None:
                self.cells_owned += 1
            self._launch([(key, spec)])
            return
        self.cells_forwarded += 1
        # Keep a local copy: the forwarding node becomes a replica, so
        # repeat sweeps here are store hits and the cell survives the
        # owner's death (warm-handoff's standing counterpart).
        await loop.run_in_executor(None, self.store.put, spec, result)
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def node_info(self) -> dict:
        """This node's identity + routing counters (manifest ``node``
        block and the ``node`` section of ``/stats``)."""
        return {
            "node_id": self.node_id or "",
            "peers": len(self.peers),
            "owned": self.cells_owned,
            "forwarded": self.cells_forwarded,
            "fallbacks": self.forward_fallbacks,
            "handoff_pulled": self.handoff_pulled,
        }

    async def warm_handoff(self) -> int:
        """Pull entries this node owns from its peers' stores.

        Run at join (and harmless any time): for every peer, list its
        store keys, keep the ones the ring says are *ours* and that we
        do not already hold, and fetch them in batches as raw bytes.
        Rebalancing after membership change is thereby a cache-warm
        event, not a recompute storm.  Returns how many entries landed.
        """
        from repro.serve.client import fetch_store_entries, fetch_store_keys

        if self.ring is None:
            return 0
        loop = asyncio.get_running_loop()
        pulled = 0
        local = set(await loop.run_in_executor(None, self.store.keys))
        for peer in self.peers:
            try:
                remote = await loop.run_in_executor(
                    None, fetch_store_keys, peer
                )
            except Exception:
                continue  # dead peer: nothing to pull from it
            wanted = [
                key
                for key in remote
                if key not in local and self.ring.owner(key) == self.node_id
            ]
            for start in range(0, len(wanted), 64):
                batch = wanted[start : start + 64]
                try:
                    entries = await loop.run_in_executor(
                        None, fetch_store_entries, peer, batch
                    )
                except Exception:
                    break
                for key, (data, digest) in entries.items():
                    if await loop.run_in_executor(
                        None, self.store.put_raw, key, data, digest
                    ):
                        local.add(key)
                        pulled += 1
        self.handoff_pulled += pulled
        return pulled

    @staticmethod
    async def _await_cell(
        index: int,
        spec: CellSpec,
        key: str,
        deduped: bool,
        future: asyncio.Future,
    ) -> tuple[int, CellOutcome]:
        result = await asyncio.shield(future)
        return index, CellOutcome(spec, result, key, deduped=deduped)

    # -- persistent jobs ------------------------------------------------
    def submit_job(self, payload: dict) -> dict:
        """Validate a sweep spec, durably enqueue it, and start its
        background drain; returns the ``POST /jobs`` response body."""
        if self.queue is None:
            raise SweepRequestError("this node has no job queue enabled")
        specs, options = expand_sweep(payload)
        job_id = self.queue.submit(
            [spec_to_dict(spec) for spec in specs], options
        )
        self._start_drain(job_id)
        return {"kind": "repro-serve-job", "job_id": job_id,
                "cells": len(specs)}

    def job_state(self, job_id: str) -> JobState:
        if self.queue is None:
            raise SweepRequestError("this node has no job queue enabled")
        return self.queue.load(job_id)

    def job_status(self, job_id: str) -> dict:
        task = self._job_tasks.get(job_id)
        return {
            **self.job_state(job_id).status_dict(),
            "draining": task is not None and not task.done(),
        }

    def resume_jobs(self) -> list[str]:
        """Restart the drain of every incomplete job on disk (called at
        service start; this is the ``kill -9`` resume path)."""
        if self.queue is None:
            return []
        resumed = []
        for job_id in self.queue.jobs():
            if not self.queue.load(job_id).complete:
                self._start_drain(job_id)
                resumed.append(job_id)
        return resumed

    def _start_drain(self, job_id: str) -> None:
        task = self._job_tasks.get(job_id)
        if task is not None and not task.done():
            return  # already draining in this process
        self._job_tasks[job_id] = asyncio.ensure_future(
            self._drain_job(job_id)
        )

    async def _drain_job(self, job_id: str) -> None:
        """Resolve every pending cell of one job, journaling each
        completion durably before anything else observes it.

        Claims make concurrent drains (two incarnations racing around a
        restart) mutually exclusive per cell; the journal makes every
        completion exactly-once; the content-addressed store makes the
        rare claimed-but-unjournaled replay a cache read, not a second
        simulation.
        """
        assert self.queue is not None
        loop = asyncio.get_running_loop()
        state = await loop.run_in_executor(None, self.queue.load, job_id)
        claimed = [
            index
            for index in state.pending
            if await loop.run_in_executor(
                None, self.queue.claim, job_id, index
            )
        ]
        if not claimed:
            return
        specs = [spec_from_dict(state.cells[index]) for index in claimed]
        finished: set[int] = set()
        try:
            async for pos, outcome in self.stream_cells(
                specs, warm=bool(state.options.get("warm", False))
            ):
                index = claimed[pos]
                await loop.run_in_executor(
                    None, self.queue.mark_done, job_id, index, outcome.key
                )
                finished.add(index)
        finally:
            # A failed drain (a deterministically-erroring cell, or
            # shutdown) must not wedge its unfinished claims: release
            # them so the next drain -- ours or a restarted node's --
            # can take over.
            for index in claimed:
                if index not in finished:
                    await loop.run_in_executor(
                        None, self.queue.release, job_id, index
                    )

    async def stream_job_results(
        self, job_id: str, include_results: bool = True
    ) -> AsyncIterator[dict]:
        """NDJSON lines for ``GET /jobs/<id>/results``: every finished
        cell straight from the content store, then a job summary."""
        import base64
        import pickle

        loop = asyncio.get_running_loop()
        state = self.job_state(job_id)
        streamed = 0
        missing = 0
        for index in sorted(state.done):
            # Fetch by the *journaled* key: a warm drain resolves cells
            # under warm-derived addresses, so recomputing the address
            # from the cold wire spec would miss every one of them.
            key = state.done[index]
            data = await loop.run_in_executor(None, self.store.read_raw, key)
            result = None
            if data is not None:
                try:
                    result = pickle.loads(data)
                except Exception:
                    result = None
            if not isinstance(result, SimResult):
                missing += 1  # evicted (or unreadable) since completion
                continue
            spec = spec_from_dict(state.cells[index])
            line = {
                "kind": "cell",
                "index": index,
                "key": key,
                "workload": state.cells[index]["workload"],
                "mechanism": spec.config.mechanism,
                "cycles": result.cycles,
                "ipc": round(result.ipc, 6),
                "cached": True,
                "deduped": False,
            }
            if include_results:
                line["result_b64"] = base64.b64encode(data).decode("ascii")
            streamed += 1
            yield line
        yield {
            "kind": "job-summary",
            "job_id": job_id,
            "cells": state.total,
            "done": len(state.done),
            "streamed": streamed,
            "evicted": missing,
            "duplicate_done": state.duplicate_done,
            "complete": state.complete,
        }

    # -- simulation -----------------------------------------------------
    def _launch(self, to_start: list[tuple[str, CellSpec]]) -> None:
        """Shard fresh cells and fire one task per engine batch."""
        if not to_start:
            return
        by_shard: dict[int, list[tuple[str, CellSpec]]] = {}
        for key, spec in to_start:
            by_shard.setdefault(self._shard_for(key), []).append((key, spec))
        for shard, group in by_shard.items():
            workers = self.workers or 1
            size = pool_batch_size(len(group), workers)
            for start in range(0, len(group), size):
                asyncio.ensure_future(
                    self._run_batch(shard, group[start : start + size])
                )

    async def _run_batch(
        self, shard: int, keyed: list[tuple[str, CellSpec]]
    ) -> None:
        """Run one claimed batch on its shard and publish every cell.

        Mirrors the one-shot runner's self-healing ladder: a failed
        batch claim (worker crash, broken pool) rebuilds the shard's
        pool and retries cells one at a time; cells that still fail run
        serially on the thread executor, which cannot crash away.
        """
        loop = asyncio.get_running_loop()
        specs = [spec for _, spec in keyed]
        try:
            results: list[SimResult | Exception] = list(
                await loop.run_in_executor(
                    self._shards()[shard], run_cell_batch, specs
                )
            )
        except Exception:
            results = await self._retry_cells(shard, specs)
        for (key, spec), result in zip(keyed, results):
            future = self._inflight.pop(key, None)
            if isinstance(result, Exception):
                # Deterministically failing cell: every waiter gets the
                # error (re-running it could only fail identically).
                if future is not None and not future.done():
                    future.set_exception(result)
                continue
            await loop.run_in_executor(None, self.store.put, spec, result)
            self.cells_simulated += 1
            if future is not None and not future.done():
                future.set_result(result)

    async def _retry_cells(
        self, shard: int, specs: list[CellSpec]
    ) -> list[SimResult | Exception]:
        loop = asyncio.get_running_loop()
        executors = self._shards()
        old = executors[shard]
        if isinstance(old, ProcessPoolExecutor):
            old.shutdown(wait=False, cancel_futures=True)
            executors[shard] = self._make_pool(
                self.workers or max(1, (os.cpu_count() or 1) // len(executors))
            )
        results: list[SimResult | Exception] = []
        for spec in specs:
            try:
                results.append(
                    await loop.run_in_executor(
                        executors[shard], run_cell, spec
                    )
                )
            except Exception:
                # Terminal degrade: in-process (thread executor) serial
                # run, like run_cells' serial completion path.  A cell
                # that *still* raises here fails deterministically; the
                # error is routed to its waiters, never swallowed.
                try:
                    results.append(
                        await loop.run_in_executor(None, run_cell, spec)
                    )
                except Exception as exc:
                    results.append(exc)
        return results

    # -- stats ----------------------------------------------------------
    def stats_dict(self) -> dict:
        stats = {
            "kind": "repro-serve-stats",
            "uptime_s": round(time.time() - self.started, 3),
            "pools": self.pools,
            "workers": self.workers,
            "requests": self.requests,
            "cells_requested": self.cells_requested,
            "cells_simulated": self.cells_simulated,
            "inflight": len(self._inflight),
            "cache": self.store.stats_dict(),
        }
        if self.node_id:
            stats["node"] = {**self.node_info(), "peer_urls": self.peers}
        if self.queue is not None:
            jobs = self.queue.jobs()
            stats["jobs"] = {
                "total": len(jobs),
                "draining": sum(
                    1 for t in self._job_tasks.values() if not t.done()
                ),
            }
        return stats


def summarize(outcomes: list[CellOutcome]) -> dict:
    """The final Table-3-style summary line of a sweep response: one row
    per cell with headline metrics, plus resolution totals."""
    rows = [
        {
            "workload": list(o.spec.workload)
            if isinstance(o.spec.workload, tuple)
            else o.spec.workload,
            "mechanism": o.spec.config.mechanism,
            "cycles": o.result.cycles,
            "retired_user": o.result.retired_user,
            "committed_fills": o.result.committed_fills,
            "ipc": round(o.result.ipc, 6),
            "mpki": round(o.result.miss_rate_per_kilo_inst, 6),
            # Per-cause exception counts (docs/SCENARIOS.md); empty for
            # the perfect machine, which never traps.
            "exceptions_taken": dict(sorted(o.result.stats.cause_taken.items())),
        }
        for o in outcomes
    ]
    return {
        "kind": "summary",
        "cells": len(outcomes),
        "cached": sum(o.cached for o in outcomes),
        "deduped": sum(o.deduped for o in outcomes),
        "simulated": sum(
            not o.cached and not o.deduped for o in outcomes
        ),
        "table": rows,
    }
