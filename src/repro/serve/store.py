"""Content-addressed result store: the sweep service's cache layer.

:class:`ContentStore` promotes the fingerprint-keyed
:class:`~repro.sim.parallel.ResultCache` into a proper store: the same
on-disk layout (one fsynced, rename-published pickle plus a JSON
manifest per cell, addressed by the sha-256 of everything that defines
the result -- spec, engine backend, fault spec, source fingerprint), but
with

* a **size bound** -- ``max_entries`` / ``max_bytes`` (or the
  ``REPRO_SERVE_CACHE_ENTRIES`` / ``REPRO_SERVE_CACHE_MB`` knobs) --
  enforced by least-recently-used eviction after every publish;
* **counters** (hits, misses, puts, evictions, in-flight dedupes)
  surfaced on the service's ``/stats`` endpoint and embedded in every
  manifest the store writes (the ``cache`` block,
  :func:`repro.obs.manifest.build_manifest`);
* cross-process LRU: every hit touches the entry's mtime, so a store
  directory shared by several service processes still evicts globally
  least-recently-used cells first.

Because the layout and addressing are identical to ``ResultCache``, the
service's store and the batch runner's cache are the *same* cache: a
sweep run through ``run_cells`` warms the service and vice versa.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import re
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.sim.parallel import CellSpec, ResultCache
from repro.sim.simulator import SimResult

#: What a content address looks like on the wire (the 40-hex-digit
#: sha-256 prefix :meth:`ResultCache._path` files results under).
_KEY_RE = re.compile(r"[0-9a-f]{40}")


def _env_int(name: str, default: int) -> int:
    """A non-negative integer knob (0 = unlimited), validated early."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a non-negative integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


@dataclass
class StoreStats:
    """Lifetime counters of one store instance (all monotonic)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: Requests served by awaiting an already-running simulation of the
    #: same cell instead of starting another one (service-level dedupe).
    inflight_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class ContentStore(ResultCache):
    """Size-bounded, stats-carrying, LRU-evicting result store."""

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        super().__init__(directory)
        if max_entries is None:
            max_entries = _env_int("REPRO_SERVE_CACHE_ENTRIES", 0)
        if max_bytes is None:
            max_bytes = _env_int("REPRO_SERVE_CACHE_MB", 0) * 1024 * 1024
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        #: Pickle names this process has touched, least recent first.
        self._lru: OrderedDict[str, None] = OrderedDict()
        #: Cluster identity block embedded in manifests (node id plus
        #: owned/forwarded counters); set by the service in cluster
        #: mode, ``None`` on a single host.
        self.node_info: Callable[[], dict] | None = None

    # ------------------------------------------------------------------
    def key(self, spec: CellSpec) -> str:
        """The cell's content address (the hash the pickle is filed
        under); in-flight dedupe and sharding both key on this."""
        return self._path(spec).stem

    def get(self, spec: CellSpec) -> SimResult | None:
        result = super().get(spec)
        if result is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
            self._touch(self._path(spec).name)
        return result

    def put(self, spec: CellSpec, result: SimResult) -> None:
        if not self.enabled():
            return
        # Counted before the write so the manifest published inside it
        # (which embeds stats_dict) already reflects this put.
        self.stats.puts += 1
        super().put(spec, result)
        self._touch(self._path(spec).name)
        self._evict()

    # -- raw entries (warm-handoff transport) ---------------------------
    def keys(self) -> list[str]:
        """Every published content address, sorted (``GET /store/keys``)."""
        return sorted(path.stem for path in self.entries())

    def read_raw(self, key: str) -> bytes | None:
        """The published pickle bytes for ``key``, verbatim.

        Warm handoff moves entries between nodes as raw bytes -- the
        donor never unpickles, the receiver never re-simulates.  The
        content address hashes the *spec*, not the bytes, so the wire
        carries a sha-256 of the bytes alongside them and
        :meth:`put_raw` verifies the payload before publishing.
        """
        if not _KEY_RE.fullmatch(key):
            return None  # never let a wire key escape the store dir
        try:
            return (self.directory / f"{key}.pkl").read_bytes()
        except OSError:
            return None

    def put_raw(self, key: str, data: bytes, sha256: str | None = None) -> bool:
        """Publish foreign pickle bytes under ``key`` (fsync + rename,
        like :meth:`put`); counted as a put and subject to eviction.
        No manifest is written -- the donor's manifest stays the audit
        trail for the simulation itself.

        The key hashes the spec, not the bytes, so the address alone
        cannot vouch for a foreign payload.  Before publishing: the
        bytes must match ``sha256`` when given (the ``/store/fetch``
        wire digest, catching corruption and mis-batched entries), and
        must unpickle to a :class:`SimResult` -- peers are already
        trusted to be unpickled (forwarding does), but garbage must
        never be cached and later served as an authentic result.
        """
        if not self.enabled() or not _KEY_RE.fullmatch(key):
            return False
        if sha256 is not None and hashlib.sha256(data).hexdigest() != sha256:
            return False
        try:
            if not isinstance(pickle.loads(data), SimResult):
                return False
        except Exception:
            return False
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"{key}.pkl"
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            tmp.replace(path)
        except OSError:
            return False
        self.stats.puts += 1
        self._touch(path.name)
        self._evict()
        return True

    # ------------------------------------------------------------------
    def _touch(self, name: str) -> None:
        """Move ``name`` to most-recently-used, in memory and on disk."""
        self._lru.pop(name, None)
        self._lru[name] = None
        try:
            os.utime(self.directory / name)
        except OSError:
            pass  # entry may have been evicted by another process

    def entries(self) -> list[Path]:
        """Every published pickle currently in the store."""
        try:
            return [p for p in self.directory.glob("*.pkl") if p.is_file()]
        except OSError:
            return []

    def total_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _eviction_order(self) -> list[Path]:
        """Victims first: entries this process never touched (by mtime,
        oldest first -- other processes' cold cells), then our own in
        least-recently-used order."""
        ranks = {name: idx for idx, name in enumerate(self._lru)}
        known: list[tuple[int, Path]] = []
        unknown: list[tuple[float, Path]] = []
        for path in self.entries():
            rank = ranks.get(path.name)
            if rank is not None:
                known.append((rank, path))
            else:
                try:
                    unknown.append((path.stat().st_mtime, path))
                except OSError:
                    continue
        unknown.sort(key=lambda pair: pair[0])
        known.sort(key=lambda pair: pair[0])
        return [path for _, path in unknown] + [path for _, path in known]

    def _over_budget(self) -> bool:
        if self.max_entries and len(self.entries()) > self.max_entries:
            return True
        return bool(self.max_bytes) and self.total_bytes() > self.max_bytes

    def _evict(self) -> None:
        if not self.max_entries and not self.max_bytes:
            return
        order = self._eviction_order()
        while order and self._over_budget():
            victim = order.pop(0)
            try:
                victim.unlink()
            except OSError:
                continue
            try:
                victim.with_suffix(".json").unlink()
            except OSError:
                pass
            self._lru.pop(victim.name, None)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def stats_dict(self) -> dict[str, int]:
        """Counters plus current occupancy, for ``/stats`` and
        manifests (all values are non-negative integers by schema)."""
        return {
            **self.stats.as_dict(),
            "entries": len(self.entries()),
            "bytes": self.total_bytes(),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }

    def _manifest_cache_stats(self) -> dict | None:
        return self.stats_dict()

    def _manifest_node_info(self) -> dict | None:
        return self.node_info() if self.node_info is not None else None
