"""``repro-serve loadgen``: the cluster's load-generator benchmark.

Boots a real local multi-process cluster (:mod:`repro.serve.cluster`),
fires ``--clients`` concurrent clients at it -- each client submits the
same overlapping grid ``--reps`` times, round-robined across nodes, the
way a fleet of experiment front-ends would -- and reports what the
cluster sustained:

* **cells/sec** -- resolved cells (every cell of every sweep of every
  client) per wall-clock second; the headline throughput number;
* **dedupe ratio** -- the fraction of requested cells the cluster never
  had to simulate (in-flight dedupe + store hits doing their job);
* **store hit-rate** -- hits / (hits + misses) across all nodes;
* **p50/p99 latency** -- per-sweep wall time as a client saw it;
* forwarding counters -- owned vs forwarded vs fallback cells.

The report is written as JSON (``BENCH_serve.json`` is the committed
baseline) and can be gated against a baseline with ``--baseline`` /
``--max-drop``, the same regression pattern perfbench uses: the nightly
``loadgen-bench`` CI job fails on a >20 % cells/sec drop.

Throughput here measures the *service* fabric -- routing, dedupe, store,
forwarding -- not the simulator: after the first wave the grid is warm
everywhere, which is exactly the regime a long-lived cluster serves.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def hermetic_env(engine: str | None) -> tuple[dict[str, str], str]:
    """The environment every loadgen/smoke node runs under.

    Precedence for the engine backend: explicit ``--engine`` flag, then
    the caller's ``REPRO_ENGINE``, then the reference kernel -- resolved
    *here* and pinned into the child environment, so a stray parent
    variable can never silently change what a CI run measures
    (docs/SERVICE.md "Hermetic smoke runs").  The cache is pinned on:
    both harnesses exist to exercise the store.
    """
    resolved = engine or os.environ.get("REPRO_ENGINE") or "reference"
    return {"REPRO_ENGINE": resolved, "REPRO_CACHE": "1"}, resolved


async def _client(
    index: int,
    urls: list[str],
    payload: dict,
    reps: int,
    latencies: list[float],
) -> int:
    """One client: ``reps`` sweeps of the grid, round-robining its
    starting node; returns how many cells it saw resolved."""
    from repro.serve.client import async_sweep, split_server_url

    cells = 0
    for rep in range(reps):
        host, port = split_server_url(urls[(index + rep) % len(urls)])
        begin = time.perf_counter()
        events = await async_sweep(host, port, payload)
        latencies.append(time.perf_counter() - begin)
        cells += sum(1 for e in events if e.get("kind") == "cell")
    return cells


async def _run_storm(args, urls: list[str], payload: dict) -> dict:
    latencies: list[float] = []
    begin = time.perf_counter()
    resolved = await asyncio.gather(
        *(
            _client(i, urls, payload, args.reps, latencies)
            for i in range(args.clients)
        )
    )
    wall = time.perf_counter() - begin
    return {"wall_s": wall, "cells": sum(resolved), "latencies": latencies}


def run_loadgen(args) -> dict:
    """Boot the cluster, run the storm, and assemble the report."""
    from repro.serve.cluster import LocalCluster

    env, engine = hermetic_env(getattr(args, "engine", None))
    payload = {
        "workloads": args.workload,
        "mechanisms": args.mechanism,
        "user_insts": args.insts,
        "warmup_insts": args.warmup,
        "max_cycles": 2_000_000,
        "include_results": False,
    }
    grid = len(args.workload) * len(args.mechanism)
    cluster = LocalCluster(
        root=args.cluster_dir,
        nodes=args.nodes,
        pools=1,
        workers=args.workers,
        env=env,
    )
    with cluster:
        storm = asyncio.run(_run_storm(args, cluster.urls, payload))
        stats = [s for s in cluster.stats() if s is not None]

    requested = sum(s["cells_requested"] for s in stats)
    simulated = sum(s["cells_simulated"] for s in stats)
    hits = sum(s["cache"]["hits"] for s in stats)
    misses = sum(s["cache"]["misses"] for s in stats)
    owned = sum(s.get("node", {}).get("owned", 0) for s in stats)
    forwarded = sum(s.get("node", {}).get("forwarded", 0) for s in stats)
    fallbacks = sum(s.get("node", {}).get("fallbacks", 0) for s in stats)
    latencies = storm["latencies"]
    return {
        "kind": "repro-serve-loadgen",
        "engine_backend": engine,
        "protocol": {
            "nodes": args.nodes,
            "workers_per_node": args.workers,
            "clients": args.clients,
            "reps_per_client": args.reps,
            "grid_cells": grid,
            "workloads": list(args.workload),
            "mechanisms": list(args.mechanism),
            "user_insts": args.insts,
            "warmup_insts": args.warmup,
        },
        "cells_resolved": storm["cells"],
        "wall_s": round(storm["wall_s"], 3),
        "cells_per_sec": round(storm["cells"] / storm["wall_s"], 2),
        "dedupe_ratio": round(1 - simulated / requested, 4) if requested else 0.0,
        "store_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses
        else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 2),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 2),
        "cells_requested": requested,
        "cells_simulated": simulated,
        "cells_owned": owned,
        "cells_forwarded": forwarded,
        "forward_fallbacks": fallbacks,
    }


def gate(report: dict, baseline: dict, max_drop: float) -> list[str]:
    """Regression check vs a committed baseline (perfbench's
    ``--baseline/--max-drop`` pattern); returns failure messages."""
    failures = []
    base = baseline.get("cells_per_sec")
    fresh = report.get("cells_per_sec")
    if not isinstance(base, (int, float)) or base <= 0:
        failures.append("baseline carries no usable cells_per_sec")
    elif fresh < base * (1 - max_drop):
        failures.append(
            f"cells/sec regressed past {max_drop:.0%}: "
            f"{fresh:.1f} vs baseline {base:.1f}"
        )
    base_hit = baseline.get("store_hit_rate")
    if isinstance(base_hit, (int, float)) and base_hit > 0:
        if report.get("store_hit_rate", 0) < base_hit * (1 - max_drop):
            failures.append(
                f"store hit-rate regressed past {max_drop:.0%}: "
                f"{report.get('store_hit_rate')} vs baseline {base_hit}"
            )
    return failures


def main(args) -> int:
    """CLI entry (``repro-serve loadgen``)."""
    report = run_loadgen(args)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"repro-serve loadgen: report written to {args.output}")
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failures = gate(report, baseline, args.max_drop)
        for failure in failures:
            print(f"repro-serve loadgen: FAIL: {failure}")
        if failures:
            return 1
        print(
            f"repro-serve loadgen: within {args.max_drop:.0%} of "
            f"{args.baseline} ({report['cells_per_sec']} vs "
            f"{baseline.get('cells_per_sec')} cells/sec)"
        )
    return 0
