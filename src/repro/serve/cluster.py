"""Local multi-process cluster harness (loadgen, cluster smoke, CI).

:class:`LocalCluster` boots N real ``repro-serve serve`` processes on
localhost, each with its own store and job-queue directory and every
other node in its ``--peer`` list, so the full cluster stack -- ring
placement, HTTP peer forwarding, warm handoff, persistent jobs -- runs
exactly as deployed, just with all the "machines" on one host.  The
harness can SIGKILL a node mid-sweep and restart it with the same
identity and directories, which is how the cluster smoke proves the
job queue's kill -9 resume contract.

Ports are pre-picked (bound to 0, then released) because consistent
hashing needs every member's advertised URL *before* any member starts;
the bind-release race is real but vanishing on a CI host, and
:meth:`LocalCluster.start` fails loudly if a node never turns healthy.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path


class ClusterError(RuntimeError):
    """A node failed to boot, respond, or die on request."""


def pick_ports(count: int) -> list[int]:
    """``count`` distinct free TCP ports, all held until chosen."""
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def probe(url: str, path: str = "/healthz", timeout: float = 2.0) -> dict | None:
    """GET a JSON endpoint; ``None`` on any failure (dead node)."""
    from repro.serve.client import split_server_url

    host, port = split_server_url(url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        if response.status != 200:
            return None
        return json.loads(response.read())
    except (OSError, http.client.HTTPException, json.JSONDecodeError):
        return None
    finally:
        conn.close()


@dataclass
class ClusterNode:
    """One member process and everything needed to restart it."""

    index: int
    url: str
    port: int
    cache_dir: Path
    jobs_dir: Path
    log_path: Path
    argv: list[str] = field(default_factory=list)
    process: subprocess.Popen | None = None

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class LocalCluster:
    """N-node localhost cluster of real server processes."""

    def __init__(
        self,
        root: str | Path,
        nodes: int = 3,
        pools: int = 1,
        workers: int = 1,
        env: dict[str, str] | None = None,
        handoff: bool = False,
    ) -> None:
        if nodes < 1:
            raise ValueError(f"need at least one node, got {nodes}")
        self.root = Path(root)
        self.pools = pools
        self.workers = workers
        self.handoff = handoff
        #: Extra environment for every node (hermetic smoke/loadgen runs
        #: pin REPRO_ENGINE / REPRO_CACHE here).
        self.env = dict(env or {})
        ports = pick_ports(nodes)
        self.nodes: list[ClusterNode] = []
        for index, port in enumerate(ports):
            node_dir = self.root / f"node{index}"
            self.nodes.append(
                ClusterNode(
                    index=index,
                    url=f"http://127.0.0.1:{port}",
                    port=port,
                    cache_dir=node_dir / "store",
                    jobs_dir=node_dir / "jobs",
                    log_path=node_dir / "serve.log",
                )
            )

    @property
    def urls(self) -> list[str]:
        return [node.url for node in self.nodes]

    # ------------------------------------------------------------------
    def _argv(self, node: ClusterNode) -> list[str]:
        argv = [
            sys.executable, "-m", "repro.serve", "serve",
            "--host", "127.0.0.1",
            "--port", str(node.port),
            "--node-url", node.url,
            "--cache-dir", str(node.cache_dir),
            "--jobs-dir", str(node.jobs_dir),
            "--pools", str(self.pools),
            "--workers", str(self.workers),
        ]
        for peer in self.nodes:
            if peer.index != node.index:
                argv += ["--peer", peer.url]
        if self.handoff:
            argv.append("--handoff")
        return argv

    def launch(self, node: ClusterNode) -> None:
        node.cache_dir.mkdir(parents=True, exist_ok=True)
        node.jobs_dir.mkdir(parents=True, exist_ok=True)
        node.argv = self._argv(node)
        log = node.log_path.open("ab")
        try:
            # Own session => own process group: killing the node kills
            # its forked pool workers too, which otherwise outlive a
            # SIGKILLed parent and keep its port bound against restart.
            node.process = subprocess.Popen(
                node.argv,
                stdout=log,
                stderr=subprocess.STDOUT,
                env={**os.environ, **self.env},
                start_new_session=True,
            )
        finally:
            log.close()  # the child holds its own descriptor

    def start(self, timeout: float = 60.0) -> "LocalCluster":
        for node in self.nodes:
            self.launch(node)
        self.wait_healthy(timeout=timeout)
        return self

    def wait_healthy(
        self, timeout: float = 60.0, indices: list[int] | None = None
    ) -> None:
        deadline = time.monotonic() + timeout
        todo = list(self.nodes if indices is None else
                    (self.nodes[i] for i in indices))
        for node in todo:
            while probe(node.url) is None:
                if not node.alive():
                    raise ClusterError(
                        f"node {node.index} exited with "
                        f"{node.process.returncode if node.process else '?'} "
                        f"(log: {node.log_path})"
                    )
                if time.monotonic() > deadline:
                    raise ClusterError(
                        f"node {node.index} never became healthy "
                        f"(log: {node.log_path})"
                    )
                time.sleep(0.05)

    # ------------------------------------------------------------------
    @staticmethod
    def _killpg(node: ClusterNode, sig: int) -> None:
        if node.process is None:
            return
        try:
            os.killpg(node.process.pid, sig)  # session leader: pgid == pid
        except ProcessLookupError:
            pass

    def kill(self, index: int) -> None:
        """SIGKILL one node (and its worker group) -- no shutdown hooks
        run, by design: this is the crash the job queue must survive."""
        node = self.nodes[index]
        if node.process is not None and node.process.poll() is None:
            self._killpg(node, signal.SIGKILL)
            node.process.wait(timeout=30)

    def restart(self, index: int, timeout: float = 60.0) -> None:
        """Relaunch a (dead) node with its exact identity: same URL,
        same store, same job queue.  Resume happens in its start path."""
        node = self.nodes[index]
        if node.alive():
            raise ClusterError(f"node {index} is still running")
        self.launch(node)
        self.wait_healthy(timeout=timeout, indices=[index])

    def stats(self) -> list[dict | None]:
        """Every node's ``/stats`` (None for dead nodes)."""
        return [probe(node.url, "/stats", timeout=10.0) for node in self.nodes]

    def stop(self) -> None:
        for node in self.nodes:
            if node.process is not None and node.process.poll() is None:
                node.process.terminate()
        for node in self.nodes:
            if node.process is not None:
                try:
                    node.process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    node.process.kill()
                    node.process.wait(timeout=15)
                finally:
                    # Reap stragglers: pool workers whose parent died
                    # without unwinding its executors.
                    self._killpg(node, signal.SIGKILL)

    # ------------------------------------------------------------------
    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
