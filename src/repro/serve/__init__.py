"""Simulation-as-a-service: the sharded sweep server (docs/SERVICE.md).

``repro.serve`` promotes the one-shot process-pool runner
(:mod:`repro.sim.parallel`) into a long-running service: an asyncio
HTTP front end (:mod:`repro.serve.http`) accepts sweep specs as JSON,
validates and expands them (:func:`~repro.serve.service.expand_sweep`),
shards cells across persistent worker pools with in-flight dedupe
(:class:`~repro.serve.service.SweepService`), and serves results from a
size-bounded content-addressed store with LRU eviction and counters
(:class:`~repro.serve.store.ContentStore`).  Thin clients -- blocking
and asyncio -- live in :mod:`repro.serve.client`; the experiment CLIs
reach the service through ``repro-experiments --server URL``.

Layering: ``serve`` sits at the top of the runtime stack (above
``sim``/``engine``/``checkpoint``), beside ``experiments``; nothing
below it may import it (enforced by archlint).
"""

from __future__ import annotations

from repro.serve.client import ServeError, SweepClient, run_cells_via_server
from repro.serve.http import SweepHTTPServer
from repro.serve.service import (
    CellOutcome,
    SweepRequestError,
    SweepService,
    expand_sweep,
)
from repro.serve.store import ContentStore, StoreStats

__all__ = [
    "CellOutcome",
    "ContentStore",
    "ServeError",
    "StoreStats",
    "SweepClient",
    "SweepHTTPServer",
    "SweepRequestError",
    "SweepService",
    "expand_sweep",
    "run_cells_via_server",
]
