"""``python -m repro.serve`` -> the ``repro-serve`` CLI."""

from __future__ import annotations

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
