"""Persistent on-disk job queue: sweeps that outlive a connection.

A *job* is a submitted sweep (``POST /jobs``) that the service drains in
the background; clients poll ``GET /jobs/<id>`` and fetch finished cells
from the content-addressed store whenever they like.  The queue's whole
design answers one question: **after ``kill -9`` at any instant, how do
we resume with zero lost and zero duplicated cells?**

Per-job layout under the queue directory::

    <job_id>/job.json          # the sweep, written once, atomically
    <job_id>/journal.ndjson    # one fsynced line per completed cell
    <job_id>/claims/<i>.claim  # exclusive in-progress markers

Three mechanisms compose into the crash-consistency story:

* **Atomic submit** -- ``job.json`` is published by fsync + rename, so a
  job either exists completely or not at all.
* **Append-only journal** -- each completed cell appends one fsynced
  NDJSON line (``{"done": index, "key": ...}``).  A crash can only tear
  the *last* line, which replay ignores: the cell simply counts as not
  done and is re-resolved -- against the content-addressed store, where
  its result usually already lives, so "re-run" degrades to a cache
  read.  Content addressing is also why a re-run can never *duplicate*
  anything: the same cell always produces the same key and the same
  bits.
* **Exclusive claim files** -- a drainer marks cells in progress by
  writing ``<i>.tmp.<pid>`` (fsynced) and ``os.link``-ing it to
  ``<i>.claim``.  The link is atomic and exclusive, so a second drainer
  is rejected (duplicate-claim rejection) while the first is alive; a
  claim whose recorded pid is dead is stale by construction and is
  broken by an atomic rename to a unique tombstone -- of two racing
  stealers exactly one rename succeeds, so the loser can never remove
  the winner's fresh claim.  A writer killed mid-claim leaves only a
  pid-suffixed temp file (or tombstone), pruned under the same liveness
  rule the result cache uses for its temp files.

The queue stores cells in their *wire* format (the validated JSON shape
of :func:`repro.serve.service.spec_from_dict`), never pickles, so a
journal is inspectable with ``cat`` and survives code changes that a
pickle would not.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.sim.parallel import _pid_alive


class JobError(KeyError):
    """An unknown or unreadable job id."""


@dataclass
class JobState:
    """One job's durable state, as replayed from disk."""

    job_id: str
    cells: list[dict]
    options: dict = field(default_factory=dict)
    #: index -> content key, from journal replay (first record wins).
    done: dict[int, str] = field(default_factory=dict)
    #: Journal lines that re-recorded an already-done cell.  Zero in any
    #: correct run -- the cluster smoke asserts it stays zero across a
    #: kill -9 resume.
    duplicate_done: int = 0
    created: float = 0.0

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def pending(self) -> list[int]:
        return [i for i in range(len(self.cells)) if i not in self.done]

    @property
    def complete(self) -> bool:
        return len(self.done) == len(self.cells)

    def status_dict(self) -> dict:
        """The ``GET /jobs/<id>`` body."""
        return {
            "kind": "repro-serve-job",
            "job_id": self.job_id,
            "cells": self.total,
            "done": len(self.done),
            "pending": self.total - len(self.done),
            "duplicate_done": self.duplicate_done,
            "complete": self.complete,
            "created": self.created,
        }


class JobQueue:
    """Directory-backed queue of sweep jobs (one writer per job at a
    time; crash-safe against ``kill -9`` at any point)."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # -- submit ---------------------------------------------------------
    def submit(self, cells: list[dict], options: dict | None = None) -> str:
        """Durably create a job; returns its id once ``job.json`` is
        published (fsync + rename, so a crash cannot half-create it)."""
        job_id = hashlib.sha256(
            os.urandom(16) + str(os.getpid()).encode()
        ).hexdigest()[:16]
        job_dir = self.directory / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        (job_dir / "claims").mkdir(exist_ok=True)
        record = {
            "kind": "repro-serve-job",
            "job_id": job_id,
            "created": time.time(),
            "cells": cells,
            "options": dict(options or {}),
        }
        tmp = job_dir / f"job.json.tmp.{os.getpid()}"
        with tmp.open("w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(job_dir / "job.json")
        return job_id

    # -- load / replay --------------------------------------------------
    def jobs(self) -> list[str]:
        """Every fully-submitted job id (submission order is not
        preserved; callers sort by ``created`` if they care)."""
        try:
            return sorted(
                p.name
                for p in self.directory.iterdir()
                if (p / "job.json").is_file()
            )
        except OSError:
            return []

    def load(self, job_id: str) -> JobState:
        """Rebuild a job's state from ``job.json`` + journal replay."""
        job_dir = self.directory / job_id
        try:
            with (job_dir / "job.json").open() as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise JobError(f"no job {job_id!r}: {exc}") from None
        state = JobState(
            job_id=job_id,
            cells=record.get("cells", []),
            options=record.get("options", {}),
            created=record.get("created", 0.0),
        )
        try:
            journal = (job_dir / "journal.ndjson").read_bytes()
        except OSError:
            return state
        for line in journal.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                index = entry["done"]
                key = entry["key"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # A torn tail from a crash mid-append: the cell is
                # simply not done; the resumed drain re-resolves it
                # (usually a store hit, never a divergent result).
                continue
            if index in state.done:
                state.duplicate_done += 1
            else:
                state.done[index] = key
        return state

    # -- claims ---------------------------------------------------------
    def _claims_dir(self, job_id: str) -> Path:
        path = self.directory / job_id / "claims"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def claim(self, job_id: str, index: int) -> bool:
        """Atomically claim one cell for execution.

        Returns ``False`` if another *live* process holds the claim
        (duplicate-claim rejection); a claim recorded by a dead pid is
        stale and is broken and re-taken.
        """
        claims = self._claims_dir(job_id)
        self._prune_stale_tmps(claims)
        final = claims / f"{index}.claim"
        tmp = claims / f"{index}.tmp.{os.getpid()}"
        with tmp.open("w") as fh:
            json.dump({"pid": os.getpid(), "claimed": time.time()}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        try:
            for attempt in range(2):
                try:
                    os.link(tmp, final)  # atomic + exclusive
                    return True
                except FileExistsError:
                    if attempt or not self._claim_stale(final):
                        return False
                    self._steal_stale(claims, final)
            return False
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    @staticmethod
    def _steal_stale(claims: Path, final: Path) -> None:
        """Break a dead holder's claim atomically.

        A bare unlink-then-link would let two stealers both win: after
        the first unlinks and re-links its own claim, the second's
        unlink removes the first's *fresh* claim.  Renaming the stale
        claim to a unique tombstone instead means exactly one stealer's
        rename succeeds; the loser sees nothing to rename and goes back
        to competing for the link, where the winner's fresh claim
        rejects it.
        """
        tombstone = claims / f"{final.name}.stale.{os.getpid()}"
        try:
            os.rename(final, tombstone)
        except OSError:
            return  # someone else stole it first
        try:
            tombstone.unlink()
        except OSError:
            pass

    @staticmethod
    def _claim_stale(path: Path) -> bool:
        """A claim is stale iff its recorded holder is gone (or the file
        is unreadable garbage, which only a dead writer can leave --
        live ones fsync before linking)."""
        try:
            holder = json.loads(path.read_text())
            pid = int(holder["pid"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return True
        return pid != os.getpid() and not _pid_alive(pid)

    @staticmethod
    def _prune_stale_tmps(claims: Path) -> None:
        """Collect pid-suffixed litter of dead writers: claim temp files
        and steal tombstones a ``kill -9`` orphaned mid-operation."""
        try:
            for tmp in (*claims.glob("*.tmp.*"), *claims.glob("*.stale.*")):
                pid_text = tmp.name.rsplit(".", 1)[-1]
                if not pid_text.isdigit():
                    continue
                pid = int(pid_text)
                if pid != os.getpid() and not _pid_alive(pid):
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
        except OSError:
            pass

    def release(self, job_id: str, index: int) -> None:
        """Drop a claim without completing the cell (idempotent)."""
        try:
            (self._claims_dir(job_id) / f"{index}.claim").unlink()
        except OSError:
            pass

    # -- completion -----------------------------------------------------
    def mark_done(self, job_id: str, index: int, key: str) -> None:
        """Durably record one completed cell, then drop its claim.

        The journal append is fsynced before the claim is released; a
        crash between the two leaves a stale claim on a *done* cell,
        which replay renders harmless (done cells are never re-claimed).
        """
        journal = self.directory / job_id / "journal.ndjson"
        line = json.dumps({"done": index, "key": key}) + "\n"
        with journal.open("a") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self.release(job_id, index)
