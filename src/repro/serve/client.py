"""Clients for the sweep service.

Two transports over the same wire format (``POST /sweep`` returning
chunked NDJSON, see :mod:`repro.serve.http`):

* :class:`SweepClient` -- blocking, ``http.client``-based; what the
  experiment CLIs use (``repro-experiments --server URL``), one
  connection per sweep, lines surfaced as they arrive.
* :func:`async_sweep` -- asyncio streams with a hand-rolled chunked
  reader; lets one process hold hundreds of concurrent sweeps open
  (the CI smoke drives 100 clients through it).

:func:`run_cells_via_server` is the drop-in
:func:`~repro.sim.parallel.run_cells` replacement: it ships
:class:`~repro.sim.parallel.CellSpec` cells to the server and rebuilds
full :class:`~repro.sim.simulator.SimResult` objects from the pickled
payload in each cell line, so callers see bit-identical results whether
cells ran locally or were served.  Only point it at a server you trust:
reconstructing results means unpickling what the server sent.
"""

from __future__ import annotations

import base64
import http.client
import json
import pickle
from typing import Iterator
from urllib.parse import urlsplit

from repro.sim.parallel import CellSpec
from repro.sim.simulator import SimResult


class ServeError(RuntimeError):
    """The server rejected a request or broke the response contract."""


def split_server_url(url: str) -> tuple[str, int]:
    """``(host, port)`` from ``http://host:port``, ``host:port``, or
    ``host`` (default port 8712)."""
    raw = url.strip()
    if "//" not in raw:
        raw = f"//{raw}"
    parts = urlsplit(raw, scheme="http")
    if parts.scheme != "http":
        raise ServeError(f"only http:// servers are supported, got {url!r}")
    if not parts.hostname:
        raise ServeError(f"cannot parse server url {url!r}")
    return parts.hostname, parts.port or 8712


class SweepClient:
    """Blocking client for one sweep server."""

    def __init__(self, url: str, timeout: float = 600.0) -> None:
        self.host, self.port = split_server_url(url)
        self.timeout = timeout

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def stats(self) -> dict:
        conn = self._connect()
        try:
            conn.request("GET", "/stats")
            response = conn.getresponse()
            body = response.read()
            if response.status != 200:
                raise ServeError(
                    f"/stats returned {response.status}: {body.decode()!r}"
                )
            return json.loads(body)
        finally:
            conn.close()

    def sweep(self, payload: dict) -> Iterator[dict]:
        """POST a sweep spec; yield each NDJSON line as a dict.

        Raises :class:`ServeError` on a non-200 status, on an in-stream
        ``error`` line, or if the stream ends without a ``summary``.
        """
        body = json.dumps(payload).encode("utf-8")
        conn = self._connect()
        try:
            conn.request(
                "POST",
                "/sweep",
                body,
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace").strip()
                raise ServeError(
                    f"/sweep returned {response.status}: {detail}"
                )
            saw_summary = False
            for raw in response:  # http.client de-chunks for us
                line = raw.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("kind") == "error":
                    raise ServeError(f"server error: {event.get('error')}")
                saw_summary = saw_summary or event.get("kind") == "summary"
                yield event
            if not saw_summary:
                raise ServeError("response stream ended without a summary")
        finally:
            conn.close()


def decode_result(event: dict) -> SimResult:
    """Rebuild the full result pickled into a ``cell`` line."""
    try:
        payload = base64.b64decode(event["result_b64"])
    except (KeyError, ValueError) as exc:
        raise ServeError(f"cell line carries no result payload: {exc}") from None
    result = pickle.loads(payload)
    if not isinstance(result, SimResult):
        raise ServeError(f"server returned a {type(result).__name__}")
    return result


def run_cells_via_server(
    url: str, specs: list[CellSpec], warm: bool = False
) -> list[SimResult]:
    """Resolve ``specs`` against a sweep server, in spec order.

    The bit-for-bit equivalent of
    :func:`repro.sim.parallel.run_cells` -- the server runs the same
    engine batches against the same content-addressed cache keys -- just
    with the simulation happening wherever the server is.
    """
    from repro.serve.service import spec_to_dict

    payload = {
        "cells": [spec_to_dict(spec) for spec in specs],
        "include_results": True,
        "warm": warm,
    }
    results: list[SimResult | None] = [None] * len(specs)
    for event in SweepClient(url).sweep(payload):
        if event.get("kind") != "cell":
            continue
        index = event.get("index")
        if not isinstance(index, int) or not 0 <= index < len(specs):
            raise ServeError(f"cell line has bad index {index!r}")
        results[index] = decode_result(event)
    missing = [i for i, r in enumerate(results) if r is None]
    if missing:
        raise ServeError(f"server never resolved cell(s) {missing}")
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Peer-to-peer calls (cluster mode: forwarding, warm handoff, jobs).
# All blocking; the service runs them on its thread executor.

def _peer_request(
    url: str,
    method: str,
    path: str,
    payload: dict | None = None,
    headers: dict[str, str] | None = None,
    timeout: float = 600.0,
) -> bytes:
    """One JSON request against a peer; raises :class:`ServeError` on
    any non-200 so callers treat every failure mode as 'owner down'."""
    host, port = split_server_url(url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(
            method,
            path,
            body,
            {"Content-Type": "application/json", **(headers or {})},
        )
        response = conn.getresponse()
        data = response.read()
        if response.status != 200:
            raise ServeError(
                f"{method} {path} on {url} returned {response.status}: "
                f"{data.decode('utf-8', 'replace').strip()}"
            )
        return data
    except (OSError, http.client.HTTPException) as exc:
        raise ServeError(f"{method} {path} on {url} failed: {exc}") from exc
    finally:
        conn.close()


def forward_cell(url: str, cell: dict, hops: int = 1) -> tuple[str, SimResult]:
    """Resolve one cell on its ring owner (``POST /cell``).

    The ``X-Repro-Hops`` header tells the owner this request already
    travelled a hop, so it must resolve locally -- the loop-prevention
    contract that bounds any cell to one forward no matter how
    inconsistent two nodes' peer lists get.
    """
    data = _peer_request(
        url,
        "POST",
        "/cell",
        payload=cell,
        headers={"X-Repro-Hops": str(hops)},
    )
    event = json.loads(data)
    key = event.get("key")
    if not isinstance(key, str):
        raise ServeError(f"peer cell response carries no key: {event!r}")
    return key, decode_result(event)


def fetch_store_keys(url: str) -> list[str]:
    """A peer's published content addresses (``GET /store/keys``)."""
    event = json.loads(_peer_request(url, "GET", "/store/keys"))
    keys = event.get("keys")
    if not isinstance(keys, list):
        raise ServeError(f"bad /store/keys response: {event!r}")
    return [k for k in keys if isinstance(k, str)]


def fetch_store_entries(url: str, keys: list[str]) -> dict[str, tuple[bytes, str]]:
    """Batched raw-entry fetch for warm handoff (``POST /store/fetch``).

    Entries come back as opaque base64 pickle bytes plus a sha-256 of
    those bytes.  The content address hashes the *spec*, not the bytes,
    so the digest rides along to :meth:`ContentStore.put_raw`, which
    verifies the payload before publishing it.  Returns
    ``key -> (bytes, sha256)``; malformed entries are dropped.
    """
    event = json.loads(
        _peer_request(url, "POST", "/store/fetch", payload={"keys": keys})
    )
    entries = event.get("entries")
    if not isinstance(entries, dict):
        raise ServeError(f"bad /store/fetch response: {event!r}")
    out: dict[str, tuple[bytes, str]] = {}
    for key, value in entries.items():
        if not isinstance(value, dict):
            continue
        data, digest = value.get("data"), value.get("sha256")
        if isinstance(data, str) and isinstance(digest, str):
            out[key] = (base64.b64decode(data), digest)
    return out


def submit_job(url: str, payload: dict) -> dict:
    """Durably enqueue a sweep on a node (``POST /jobs``)."""
    return json.loads(_peer_request(url, "POST", "/jobs", payload=payload))


def job_status(url: str, job_id: str) -> dict:
    """Poll one job (``GET /jobs/<id>``)."""
    return json.loads(_peer_request(url, "GET", f"/jobs/{job_id}"))


def job_results(
    url: str, job_id: str, include_results: bool = True
) -> list[dict]:
    """Fetch a job's finished cells (``GET /jobs/<id>/results``) as
    parsed NDJSON lines, ending with the ``job-summary`` line."""
    suffix = "" if include_results else "?results=0"
    data = _peer_request(url, "GET", f"/jobs/{job_id}/results{suffix}")
    return [json.loads(line) for line in data.splitlines() if line.strip()]


# ----------------------------------------------------------------------
# Asyncio transport (used by `repro-serve smoke` for mass concurrency).

async def async_sweep(host: str, port: int, payload: dict) -> list[dict]:
    """One sweep over raw asyncio streams; returns every NDJSON line.

    Hand-rolls the chunked-transfer decode so hundreds of these can run
    concurrently on one loop without threads.
    """
    import asyncio

    body = json.dumps(payload).encode("utf-8")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"POST /sweep HTTP/1.1\r\nHost: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()

        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(maxsplit=2)
        if len(parts) < 2 or parts[1] != "200":
            rest = await reader.read()
            raise ServeError(
                f"/sweep returned {status_line.decode().strip()!r}: "
                f"{rest.decode('utf-8', 'replace').strip()}"
            )
        chunked = False
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if (
                name.strip().lower() == "transfer-encoding"
                and "chunked" in value.lower()
            ):
                chunked = True

        if chunked:
            data = bytearray()
            while True:
                size_line = await reader.readline()
                size = int(size_line.strip().split(b";")[0], 16)
                if size == 0:
                    await reader.readline()  # trailing CRLF
                    break
                data += await reader.readexactly(size)
                await reader.readexactly(2)  # chunk CRLF
        else:
            data = bytearray(await reader.read())

        events = [
            json.loads(line)
            for line in bytes(data).splitlines()
            if line.strip()
        ]
        for event in events:
            if event.get("kind") == "error":
                raise ServeError(f"server error: {event.get('error')}")
        return events
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
