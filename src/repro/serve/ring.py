"""Consistent-hash ring: deterministic cell placement across nodes.

The cluster's one routing decision -- *which node owns this cell* -- is
made here, identically on every node, from nothing but the member list.
Nodes are identified by their advertised base URL, each projected onto a
64-bit ring at ``vnodes`` pseudo-random positions (sha-256 of
``"<node>#<i>"``), and a cell's content address is projected the same
way; the owner is the first virtual node clockwise.  Because every node
computes placement from the same member list, no coordination traffic
exists: a node receiving a sweep simply forwards each non-owned cell to
the node the ring names (:mod:`repro.serve.service`).

Properties the tests pin down (``tests/serve/test_ring.py``):

* **determinism** -- two rings built from the same members agree on
  every key, regardless of insertion order;
* **minimal movement** -- adding a node moves only the keys that node
  now owns (roughly ``1/n`` of them), and removing a node moves only
  the keys it owned; everything else stays put, which is what makes
  rebalancing a warm-handoff event rather than a recompute storm;
* **replica ordering** -- :meth:`HashRing.replicas` walks clockwise
  from the owner and yields *distinct* nodes, so an N-way replica set
  is stable and starts with the owner.

Content addresses already are uniformly distributed hex digests, but
keys are re-hashed anyway so the ring never depends on the store's key
format.
"""

from __future__ import annotations

import bisect
import hashlib

#: Virtual nodes per member.  More vnodes = smoother balance at the cost
#: of a larger (still tiny) sorted table; 64 keeps the owner-count
#: spread within a few percent for small clusters.
DEFAULT_VNODES = 64


def _position(token: str) -> int:
    """Project a token onto the 64-bit ring."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A sorted table of virtual-node positions over the member set."""

    def __init__(
        self, nodes: list[str] | tuple[str, ...] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        #: position -> node, with the positions mirrored into a sorted
        #: list for bisection.
        self._table: dict[int, str] = {}
        self._positions: list[int] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """The member list, sorted (order never affects placement)."""
        return sorted(set(self._table.values()))

    def add(self, node: str) -> None:
        """Add a member (idempotent)."""
        if not node:
            raise ValueError("node id must be non-empty")
        for i in range(self.vnodes):
            position = _position(f"{node}#{i}")
            # Position collisions between distinct nodes are a 2^-64
            # event; deterministic tie-break on the node id keeps even
            # that case identical across the cluster.
            holder = self._table.get(position)
            if holder is not None and holder <= node:
                continue
            if holder is None:
                bisect.insort(self._positions, position)
            self._table[position] = node

    def remove(self, node: str) -> None:
        """Remove a member (idempotent); its keys fall to successors."""
        stale = [p for p, n in self._table.items() if n == node]
        for position in stale:
            del self._table[position]
            index = bisect.bisect_left(self._positions, position)
            del self._positions[index]

    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The node that owns ``key`` (first vnode clockwise)."""
        if not self._positions:
            raise ValueError("ring has no nodes")
        index = bisect.bisect_right(self._positions, _position(key))
        if index == len(self._positions):
            index = 0  # wrap: the ring is circular
        return self._table[self._positions[index]]

    def replicas(self, key: str, n: int) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        ``replicas(key, 1) == [owner(key)]``; with fewer than ``n``
        members the whole member set is returned (owner first).
        """
        if not self._positions:
            raise ValueError("ring has no nodes")
        out: list[str] = []
        start = bisect.bisect_right(self._positions, _position(key))
        for step in range(len(self._positions)):
            position = self._positions[(start + step) % len(self._positions)]
            node = self._table[position]
            if node not in out:
                out.append(node)
                if len(out) == n:
                    break
        return out

    def owns(self, key: str, node: str) -> bool:
        """Whether ``node`` is ``key``'s owner under this ring."""
        return self.owner(key) == node
