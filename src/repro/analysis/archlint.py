"""AST-based architecture lint over ``src/repro``.

Three rule families, all error severity (they guard properties the test
suite cannot see until they have already caused a silent regression):

* ``layering`` — each package may only import from an allowed set of
  other ``repro`` packages.  The table below is the *actual* dependency
  discipline of the shipped tree; notably ``isa`` and ``memory`` are
  leaf layers (``isa`` must never import ``pipeline``/``sim``,
  ``memory`` must never import ``exceptions``).
* ``missing-slots`` — the hot-loop classes named in
  docs/PERFORMANCE.md must declare ``__slots__`` (directly or via
  ``@dataclass(slots=True)``); losing one silently costs ~20-30% of
  simulation throughput.
* ``nondet-*`` — the deterministic core (``pipeline/*`` and the model
  half of ``sim``) must not import ``time`` or ``random``, and must not
  iterate over sets of uops without ``sorted(...)``; any of these lets
  parallel and serial runs diverge bit-for-bit.
* ``missing-snapshot`` / ``snapshot-coverage`` — every class holding
  mutable architectural state (the :data:`SNAPSHOT_REQUIRED` table)
  must implement the explicit checkpoint protocol
  (``snapshot_state``/``restore_state``, or ``from_state``/``link_state``
  for two-phase objects), and every attribute the class declares must
  be *named* somewhere in those methods or listed in the class's
  ``_SNAPSHOT_TRANSIENT`` tuple.  A field silently added to, say, the
  TLB but never serialized would make restore-then-run diverge from
  straight-through in ways no unit test of the TLB alone can catch.
* ``layering-static-pass`` — the static kernel passes
  (:mod:`repro.analysis.parity`, :mod:`repro.analysis.restart`) must
  analyze the engine/pipeline layers as *source text*, never import
  them: a linter that imports the code it lints cannot report on a tree
  that fails to import.
* ``missing-soa-columns`` / ``soa-declaration`` — batch classes in the
  :data:`SOA_REQUIRED` table must declare their per-cell
  structure-of-arrays columns in ``_SOA_COLUMNS`` (the parity pass then
  verifies allocation/coverage against the digest surface), and every
  declared column must be a real attribute.
* ``parity-ledger-syntax`` — ``# parity:`` comments in ``engine/`` must
  be well-formed ``elided(<fact>, <reason>)`` entries; a malformed one
  is a dead suppression the parity pass would silently ignore.

Suppression: append ``# lint: ok(rule)`` to the offending line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, Severity

_SUPPRESS_RE = re.compile(r"#.*lint:\s*ok\(([^)]*)\)")

#: package -> repro packages it may import from (itself always allowed).
ALLOWED_IMPORTS: dict[str, frozenset[str]] = {
    "isa": frozenset(),
    "memory": frozenset({"isa"}),
    "branch": frozenset({"isa"}),
    "workloads": frozenset({"isa", "exceptions"}),
    "exceptions": frozenset({"isa", "memory", "branch", "pipeline"}),
    # pipeline -> analysis is the lazily-imported sanitizer hookup and
    # pipeline -> faults the lazily-imported fault injector; pipeline ->
    # sim is config/stats plumbing.  The event bus needs no import at
    # all from pipeline (core.listeners is a plain attribute).
    "pipeline": frozenset(
        {"isa", "memory", "branch", "exceptions", "sim", "analysis", "faults"}
    ),
    # obs -> sim is type-only plus the lazily-imported engine
    # fingerprint for manifests; obs -> engine is the lazily-imported
    # backend name manifests record; obs -> workloads is the CLI
    # building the programs it traces.
    "obs": frozenset({"pipeline", "sim", "workloads", "engine"}),
    # checkpoint sits above the whole machine model (it serializes every
    # layer) but below the experiment/analysis tooling that consumes it.
    "checkpoint": frozenset(
        {"isa", "memory", "branch", "pipeline", "exceptions", "sim", "workloads"}
    ),
    # engine sits beside checkpoint: backends drive the whole machine
    # model (core subclasses, batch loading via checkpoint warm state,
    # the arch-digest oracle from faults.fuzz) but stay below the
    # experiment/analysis tooling.  Everything below engine reaches it
    # only through lazy imports of the registry (resolve_engine /
    # core_class / get_backend).
    "engine": frozenset(
        {"isa", "memory", "branch", "pipeline", "exceptions", "sim",
         "checkpoint", "faults"}
    ),
    # sim -> checkpoint is lazily imported (warm cells in parallel.py,
    # Simulator.save/restore_checkpoint); checkpoint imports sim eagerly.
    # sim -> faults is the lazily-imported spec validation in
    # MachineConfig and the worker-kill hook in parallel.py.  sim ->
    # engine is the lazily-imported backend registry (run_cell,
    # run_cell_batch, the cache key, perfbench).
    "sim": frozenset(
        {
            "isa",
            "memory",
            "branch",
            "pipeline",
            "exceptions",
            "workloads",
            "obs",
            "checkpoint",
            "faults",
            "engine",
        }
    ),
    # serve sits at the top of the runtime stack, beside experiments:
    # the service drives sim.parallel's cells/batches/cache, derives
    # warm checkpoints, and embeds store stats in obs manifests.  It
    # must never import experiments or analysis, and nothing below it
    # may import serve (their allowed sets simply omit it).
    "serve": frozenset(
        {
            "isa",
            "memory",
            "branch",
            "pipeline",
            "exceptions",
            "workloads",
            "sim",
            "obs",
            "checkpoint",
            "engine",
        }
    ),
    # experiments -> serve is the lazily-imported --server client path.
    "experiments": frozenset(
        {
            "isa",
            "memory",
            "branch",
            "pipeline",
            "exceptions",
            "workloads",
            "sim",
            "analysis",
            "obs",
            "checkpoint",
            "engine",
            "serve",
        }
    ),
    "analysis": frozenset(
        {
            "isa",
            "memory",
            "branch",
            "pipeline",
            "exceptions",
            "workloads",
            "sim",
            "experiments",
            "obs",
            "checkpoint",
        }
    ),
    # faults sits beside analysis: the injector perturbs the machine
    # model, the fuzzer drives sim/workloads and uses the guest lint
    # (analysis) as its validity oracle; faults -> engine is the
    # engine-diff oracle running both backend kernels.
    "faults": frozenset(
        {
            "isa",
            "memory",
            "branch",
            "pipeline",
            "exceptions",
            "workloads",
            "sim",
            "analysis",
            "obs",
            "checkpoint",
            "engine",
        }
    ),
    # scenarios sits at the top of the testing stack: it composes the
    # fault generator (faults.progen), the exception layer's cause
    # handlers, and the simulator into runnable scenario matrices, and
    # runs both engine kernels through the digest oracle.  Nothing
    # below it may import it (no other allowed set names "scenarios").
    "scenarios": frozenset(
        {
            "isa",
            "memory",
            "branch",
            "pipeline",
            "exceptions",
            "workloads",
            "sim",
            "analysis",
            "obs",
            "checkpoint",
            "engine",
            "faults",
        }
    ),
}

#: Per-module forbidden packages, stricter than :data:`ALLOWED_IMPORTS`:
#: the static kernel passes read these layers as source text (AST) and
#: must never import them at runtime, even though the ``analysis``
#: package as a whole may.
MODULE_FORBIDDEN: dict[str, frozenset[str]] = {
    "analysis/parity.py": frozenset({"engine", "pipeline"}),
    "analysis/restart.py": frozenset({"engine", "pipeline"}),
}

#: Classes (by repo-relative module path) that hold per-cell
#: structure-of-arrays columns and must declare them in ``_SOA_COLUMNS``
#: for the snapshot/digest protocol (coverage is verified by the parity
#: pass; this rule guarantees the declaration exists).
SOA_REQUIRED: dict[str, frozenset[str]] = {
    "engine/batched.py": frozenset({"SweepBatch"}),
}

#: ``# parity:`` comments (the elision ledger in engine/) must parse.
_LEDGER_COMMENT_RE = re.compile(r"#\s*parity:")
_LEDGER_OK_RE = re.compile(r"#\s*parity:\s*elided\(\s*[^,()\s]+\s*,\s*[^()]+\)")

#: Classes (by repo-relative module path) that must declare __slots__
#: because they are allocated in the simulator's hot loop (see
#: docs/PERFORMANCE.md).
SLOTS_REQUIRED: dict[str, frozenset[str]] = {
    "pipeline/uop.py": frozenset({"Uop"}),
    "pipeline/thread.py": frozenset({"ThreadContext"}),
    "pipeline/window.py": frozenset({"InstructionWindow"}),
    "isa/registers.py": frozenset({"RegisterFile"}),
    "memory/cache.py": frozenset({"CacheStats", "_Line", "Bus"}),
}

#: Classes (by repo-relative module path) that hold mutable
#: architectural state and therefore must implement the checkpoint
#: protocol with full attribute coverage (see docs/CHECKPOINT.md).
SNAPSHOT_REQUIRED: dict[str, frozenset[str]] = {
    "isa/registers.py": frozenset({"RegisterFile"}),
    "memory/main_memory.py": frozenset({"MainMemory"}),
    "memory/page_table.py": frozenset({"PageTable"}),
    "memory/tlb.py": frozenset({"TLB", "PerfectTLB"}),
    "memory/hierarchy.py": frozenset({"MemoryHierarchy"}),
    "memory/cache.py": frozenset({"Cache", "Bus", "_DRAM"}),
    "branch/unit.py": frozenset({"BranchPredictionUnit"}),
    "branch/yags.py": frozenset({"YAGSPredictor"}),
    "branch/cascaded.py": frozenset({"CascadedIndirectPredictor"}),
    "branch/ras.py": frozenset({"ReturnAddressStack"}),
    "pipeline/core.py": frozenset({"SMTCore"}),
    "pipeline/window.py": frozenset({"InstructionWindow"}),
    "pipeline/thread.py": frozenset({"ThreadContext"}),
    "pipeline/uop.py": frozenset({"Uop"}),
    "exceptions/base.py": frozenset({"ExceptionInstance", "ExceptionMechanism"}),
    "exceptions/traditional.py": frozenset({"TraditionalMechanism"}),
    "exceptions/multithreaded.py": frozenset({"MultithreadedMechanism"}),
    "exceptions/hardware.py": frozenset({"HardwareWalkerMechanism"}),
    "exceptions/quickstart.py": frozenset({"QuickStartMechanism"}),
    "exceptions/predictors.py": frozenset(
        {"ExceptionTypePredictor", "HandlerLengthPredictor", "SpawnPredictor"}
    ),
    "faults/injector.py": frozenset({"FaultInjector"}),
}

#: Method names that count as the checkpoint protocol.  Plain objects
#: implement the first pair; objects restored in two phases (identity
#: first, object links later) implement ``from_state``/``link_state``.
_SNAPSHOT_METHODS = frozenset(
    {"snapshot_state", "restore_state", "from_state", "link_state"}
)

#: Modules whose behaviour must be bit-reproducible across processes:
#: all of pipeline, plus the model half of sim.  parallel.py (process
#: management) and perfbench.py (wall-clock harness) are exempt.
_DETERMINISTIC_SIM = frozenset(
    {"simulator.py", "config.py", "stats.py", "metrics.py", "trace.py"}
)

_NONDET_MODULES = frozenset({"time", "random"})


def _is_deterministic_scope(rel: Path) -> bool:
    parts = rel.parts
    if not parts:
        return False
    # Engine backends are alternate cycle kernels: anything
    # nondeterministic there breaks the bit-identity contract with the
    # reference core (see docs/PERFORMANCE.md).
    if parts[0] in ("pipeline", "engine"):
        return True
    return parts[0] == "sim" and parts[-1] in _DETERMINISTIC_SIM


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rule codes suppressed on that line."""
    out: dict[int, set[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[line_no] = {
                c.strip()
                for c in match.group(1).replace(",", " ").split()
                if c.strip()
            }
    return out


class _ModuleChecker(ast.NodeVisitor):
    """Runs every rule over one parsed module."""

    def __init__(self, rel: Path, source: str) -> None:
        self.rel = rel
        self.package = rel.parts[0] if len(rel.parts) > 1 else ""
        self.unit = "repro/" + rel.as_posix()
        self.deterministic = _is_deterministic_scope(rel)
        self.suppress = _suppressions(source)
        self.diagnostics: list[Diagnostic] = []

    def _emit(self, code: str, line: int, message: str) -> None:
        if code in self.suppress.get(line, ()):
            return
        self.diagnostics.append(
            Diagnostic(
                passname="arch",
                code=code,
                severity=Severity.ERROR,
                unit=self.unit,
                message=message,
                line=line,
                file="src/" + "repro/" + self.rel.as_posix(),
            )
        )

    # -- layering ------------------------------------------------------
    def _check_repro_import(self, module: str, node: ast.AST) -> None:
        parts = module.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return
        target = parts[1]
        forbidden = MODULE_FORBIDDEN.get(self.rel.as_posix())
        if forbidden is not None and target in forbidden:
            self._emit(
                "layering-static-pass",
                node.lineno,
                f"{self.rel.as_posix()} must not import repro.{target}: "
                "the static kernel passes analyze that layer as source "
                "text, never at runtime",
            )
            return
        if target == self.package or not self.package:
            return
        allowed = ALLOWED_IMPORTS.get(self.package)
        if allowed is not None and target not in allowed:
            self._emit(
                "layering",
                node.lineno,
                f"package {self.package!r} must not import "
                f"repro.{target} (allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing'})",
            )

    def _check_nondet_import(self, module: str, node: ast.AST) -> None:
        root = module.split(".")[0]
        if self.deterministic and root in _NONDET_MODULES:
            self._emit(
                f"nondet-{root}",
                node.lineno,
                f"deterministic core module imports {root!r}; wall-clock "
                "and RNG state diverge across processes",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_repro_import(alias.name, node)
            self._check_nondet_import(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:
            # Resolve "from . import x" against this module's package.
            base = ["repro", *self.rel.parts[:-1]]
            base = base[: len(base) - (node.level - 1)]
            module = ".".join(base + ([module] if module else []))
        self._check_repro_import(module, node)
        self._check_nondet_import(module, node)
        self.generic_visit(node)

    # -- __slots__ -----------------------------------------------------
    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                name = deco.func
                deco_name = (
                    name.id
                    if isinstance(name, ast.Name)
                    else name.attr
                    if isinstance(name, ast.Attribute)
                    else ""
                )
                if deco_name == "dataclass" and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in deco.keywords
                ):
                    return True
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        required = SLOTS_REQUIRED.get(self.rel.as_posix(), frozenset())
        if node.name in required and not self._has_slots(node):
            self._emit(
                "missing-slots",
                node.lineno,
                f"hot-loop class {node.name!r} must declare __slots__ "
                "(see docs/PERFORMANCE.md)",
            )
        snapshot_classes = SNAPSHOT_REQUIRED.get(self.rel.as_posix(), frozenset())
        if node.name in snapshot_classes:
            self._check_snapshot_protocol(node)
        soa_classes = SOA_REQUIRED.get(self.rel.as_posix(), frozenset())
        if node.name in soa_classes:
            self._check_soa_declaration(node)
        self.generic_visit(node)

    # -- SoA column declaration ----------------------------------------
    def _check_soa_declaration(self, node: ast.ClassDef) -> None:
        columns: set[str] | None = None
        lineno = node.lineno
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "_SOA_COLUMNS"
                    ):
                        columns = self._string_tuple(stmt.value)
                        lineno = stmt.lineno
        if not columns:
            self._emit(
                "missing-soa-columns",
                node.lineno,
                f"batch class {node.name!r} must declare its per-cell "
                "structure-of-arrays columns in a _SOA_COLUMNS tuple "
                "(the parity pass verifies coverage against it)",
            )
            return
        declared, _ = self._declared_attrs(node)
        for column in sorted(columns - declared):
            self._emit(
                "soa-declaration",
                lineno,
                f"_SOA_COLUMNS names {column!r} but {node.name} declares "
                "no such attribute",
            )

    # -- checkpoint protocol coverage ----------------------------------
    @staticmethod
    def _string_tuple(expr: ast.expr) -> set[str]:
        """Constant strings in a tuple/list/set literal."""
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return {
                e.value
                for e in expr.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
        return set()

    def _declared_attrs(self, node: ast.ClassDef) -> tuple[set[str], set[str]]:
        """(declared attribute names, _SNAPSHOT_TRANSIENT names)."""
        declared: set[str] = set()
        transient: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__slots__":
                        declared |= self._string_tuple(stmt.value)
                    elif target.id == "_SNAPSHOT_TRANSIENT":
                        transient |= self._string_tuple(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                # Dataclass field (class-level annotated name).
                if not stmt.target.id.startswith("__"):
                    declared.add(stmt.target.id)
            elif (
                isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ):
                for sub in ast.walk(stmt):
                    target = None
                    if isinstance(sub, ast.Assign) and sub.targets:
                        target = sub.targets[0]
                    elif isinstance(sub, ast.AnnAssign):
                        target = sub.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        declared.add(target.attr)
        return declared, transient

    def _check_snapshot_protocol(self, node: ast.ClassDef) -> None:
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
            and stmt.name in _SNAPSHOT_METHODS
        }
        has_save = "snapshot_state" in methods
        has_load = "restore_state" in methods or (
            "from_state" in methods and "link_state" in methods
        )
        if not (has_save and has_load):
            self._emit(
                "missing-snapshot",
                node.lineno,
                f"class {node.name!r} holds architectural state but does "
                "not implement the checkpoint protocol (snapshot_state + "
                "restore_state, or from_state/link_state; see "
                "docs/CHECKPOINT.md)",
            )
            return
        declared, transient = self._declared_attrs(node)
        covered: set[str] = set()
        full_coverage = False
        for func in methods.values():
            for sub in ast.walk(func):
                if isinstance(sub, ast.Attribute):
                    covered.add(sub.attr)
                elif isinstance(sub, ast.Constant) and isinstance(
                    sub.value, str
                ):
                    covered.add(sub.value)
                elif isinstance(sub, ast.Call):
                    name = sub.func
                    callee = (
                        name.id
                        if isinstance(name, ast.Name)
                        else name.attr
                        if isinstance(name, ast.Attribute)
                        else ""
                    )
                    if callee in ("fields", "asdict", "astuple"):
                        # dataclasses introspection serializes every
                        # field by construction.
                        full_coverage = True
        if full_coverage:
            return
        for attr in sorted(declared - covered - transient):
            if attr.startswith("__"):
                continue
            self._emit(
                "snapshot-coverage",
                node.lineno,
                f"attribute {node.name}.{attr} is neither serialized by "
                "the checkpoint protocol nor listed in "
                "_SNAPSHOT_TRANSIENT; restore would silently lose it",
            )

    # -- parity elision ledger syntax ----------------------------------
    def check_ledger_comments(self, source: str) -> None:
        """Malformed ``# parity:`` comments in engine/ are dead ledger
        entries the parity pass would silently skip."""
        if self.package != "engine":
            return
        for line_no, line in enumerate(source.splitlines(), start=1):
            if _LEDGER_COMMENT_RE.search(line) and not _LEDGER_OK_RE.search(
                line
            ):
                self._emit(
                    "parity-ledger-syntax",
                    line_no,
                    "malformed parity ledger comment; expected "
                    "'# parity: elided(<fact>, <reason>)'",
                )

    # -- nondeterministic set iteration --------------------------------
    @staticmethod
    def _is_unordered_set(expr: ast.expr) -> str | None:
        """A human description if ``expr`` is an unordered set of uops."""
        if isinstance(expr, ast.Attribute) and expr.attr in ("_uops",):
            return f"set attribute .{expr.attr}"
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        ):
            return f"{expr.func.id}(...) result"
        if isinstance(expr, ast.Set):
            return "set literal"
        return None

    def _check_iteration(self, iter_expr: ast.expr, line: int) -> None:
        if not self.deterministic:
            return
        what = self._is_unordered_set(iter_expr)
        if what is not None:
            self._emit(
                "nondet-set-order",
                line,
                f"iteration over unordered {what}; wrap in sorted(...) to "
                "keep uop visit order deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node.lineno)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter, node.lineno)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def check_file(path: Path, rel: Path) -> list[Diagnostic]:
    """Lint one source file; syntax errors become diagnostics."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                passname="arch",
                code="syntax-error",
                severity=Severity.ERROR,
                unit="repro/" + rel.as_posix(),
                message=str(exc),
                line=exc.lineno,
                file=str(path),
            )
        ]
    checker = _ModuleChecker(rel, source)
    checker.visit(tree)
    checker.check_ledger_comments(source)
    return checker.diagnostics


def check_tree(root: Path) -> list[Diagnostic]:
    """Lint every ``*.py`` under ``root`` (the ``repro`` package dir)."""
    diagnostics: list[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        diagnostics.extend(check_file(path, rel))
    return diagnostics
