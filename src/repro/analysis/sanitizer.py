"""Opt-in runtime invariant checker for the pipeline.

The paper's correctness story rests on an *ordering invariant*: when an
exception is handled on a separate thread, the handler retires in its
entirety after every pre-exception instruction and before the excepting
and post-exception instructions (the "splice").  The simulator enforces
this in `_retire`, but nothing verified it — a scheduler bug would just
produce silently wrong stats.

:class:`PipelineSanitizer` hooks window insertion and retirement and
asserts, per retired uop:

* **splice ordering** — an excepting uop never retires while its handler
  is still linked, and a handler uop only retires while its master
  thread is parked at the excepting instruction;
* **program order** — the retiring uop is its thread's ROB head and
  per-thread retirement sequence numbers are strictly monotonic;
* **lifecycle** — no uop retires twice, no squashed (wrong-path) uop
  retires, nothing retires before its result is due;
* **occupancy** — the window's occupancy counter matches its contents
  (recounted on a cadence) and never exceeds capacity at insert.

A violation raises :class:`SanitizerError` carrying the cycle and a
trace of recent pipeline events instead of letting the run continue.

The sanitizer is **off by default** and costs nothing when disabled:
the two hooks are guarded by a single ``is not None`` check each (see
BENCH_engine.json).  Enable with ``MachineConfig(sanitize=True)`` or
``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.pipeline.uop import UopState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.core import SMTCore
    from repro.pipeline.thread import ThreadContext
    from repro.pipeline.uop import Uop
    from repro.pipeline.window import InstructionWindow

#: Recount window occupancy from scratch every N retirements.
_OCCUPANCY_CADENCE = 64

#: How many recent pipeline events the failure trace includes.
_TRACE_DEPTH = 48


class SanitizerError(RuntimeError):
    """A pipeline invariant was violated.

    ``code`` is a stable identifier (``splice-order``, ``rob-order``,
    ``retire-monotonic``, ``uop-lifecycle``, ``retire-early``,
    ``occupancy``); ``cycle`` is the simulated cycle of the violation.
    The message embeds a trace of the most recent pipeline events.
    """

    def __init__(self, code: str, cycle: int, message: str, trace: str) -> None:
        self.code = code
        self.cycle = cycle
        super().__init__(
            f"[cycle {cycle}] {code}: {message}\n"
            f"--- last pipeline events ---\n{trace}"
        )


class PipelineSanitizer:
    """Runtime invariant checks over one :class:`SMTCore`."""

    __slots__ = ("core", "_events", "_last_retired_seq", "_retires")

    def __init__(self, core: "SMTCore") -> None:
        self.core = core
        self._events: deque[str] = deque(maxlen=_TRACE_DEPTH)
        #: tid -> seq of the last uop that thread retired.
        self._last_retired_seq: dict[int, int] = {}
        self._retires = 0

    # ------------------------------------------------------------------
    def _fail(self, code: str, now: int, message: str) -> None:
        trace = "\n".join(self._events) or "(no events recorded)"
        raise SanitizerError(code, now, message, trace)

    @staticmethod
    def _describe(uop: "Uop") -> str:
        kind = "handler" if uop.is_handler else "app"
        return (
            f"t{uop.thread_id} seq={uop.seq} pc={uop.pc} "
            f"{uop.inst.op.value} ({kind}, {uop.state.name})"
        )

    # ------------------------------------------------------------------
    # Hooks (called only when the sanitizer is attached).
    # ------------------------------------------------------------------
    def on_insert(self, window: "InstructionWindow", uop: "Uop") -> None:
        """Called by :meth:`InstructionWindow.insert` before mutation."""
        now = self.core.cycle
        self._events.append(f"[{now:>8}] insert {self._describe(uop)}")
        if uop in window._uops:
            self._fail(
                "uop-lifecycle",
                now,
                f"uop inserted into the window twice: {self._describe(uop)}",
            )
        if not uop.free_slot and window._occupancy >= window.capacity:
            self._fail(
                "occupancy",
                now,
                f"window overflow: occupancy {window._occupancy} at "
                f"capacity {window.capacity} on insert of "
                f"{self._describe(uop)}",
            )

    def on_retire(self, thread: "ThreadContext", uop: "Uop", now: int) -> None:
        """Called by :meth:`SMTCore._do_retire` before mutation."""
        self._events.append(f"[{now:>8}] retire {self._describe(uop)}")

        if uop.state != UopState.WINDOW:
            verb = {
                UopState.RETIRED: "retiring twice",
                UopState.SQUASHED: "retiring off a squashed wrong path",
            }.get(uop.state, f"retiring from state {uop.state.name}")
            self._fail(
                "uop-lifecycle", now, f"uop {verb}: {self._describe(uop)}"
            )
        if not thread.rob or thread.rob[0] is not uop:
            head = self._describe(thread.rob[0]) if thread.rob else "<empty>"
            self._fail(
                "rob-order",
                now,
                f"retiring uop is not its thread's ROB head: "
                f"{self._describe(uop)}; head is {head}",
            )
        if not uop.issued or uop.finish_cycle > now:
            self._fail(
                "retire-early",
                now,
                f"uop retiring before completion (issued={uop.issued}, "
                f"finish_cycle={uop.finish_cycle}): {self._describe(uop)}",
            )

        last = self._last_retired_seq.get(thread.tid)
        if last is not None and uop.seq <= last:
            self._fail(
                "retire-monotonic",
                now,
                f"per-thread retirement order broke: seq {uop.seq} after "
                f"seq {last} on t{thread.tid}",
            )
        self._last_retired_seq[thread.tid] = uop.seq

        # Splice ordering (the paper's central invariant).
        if uop.linked_handler is not None:
            self._fail(
                "splice-order",
                now,
                "excepting uop retiring while its handler thread "
                f"t{uop.linked_handler.tid} is still linked: "
                f"{self._describe(uop)}",
            )
        if thread.is_exception_thread and thread.master_uop is not None:
            # Master-less handlers (itlb_miss: the faulting fetch produced
            # no uop) retire unspliced; the master merely stalls its
            # front end, so there is nothing to park at.
            master = self.core.threads[thread.master_tid]
            if not master.rob or master.rob[0] is not thread.master_uop:
                self._fail(
                    "splice-order",
                    now,
                    f"handler uop retiring while master t{master.tid} is "
                    "not parked at the excepting instruction: "
                    f"{self._describe(uop)}",
                )

        self._retires += 1
        if self._retires % _OCCUPANCY_CADENCE == 0:
            self._verify_occupancy(now)

    # ------------------------------------------------------------------
    def _verify_occupancy(self, now: int) -> None:
        """Recount the window and cross-check its occupancy counter."""
        window = self.core.window
        counted = sum(1 for u in window._uops if not u.free_slot)
        if counted != window._occupancy:
            self._fail(
                "occupancy",
                now,
                f"window occupancy counter {window._occupancy} != "
                f"recounted {counted} (of {len(window._uops)} uops)",
            )
        if window._reserved_total < 0 or any(
            slots < 0 for slots in window._reservations.values()
        ):
            self._fail(
                "occupancy",
                now,
                f"negative window reservation: {window._reservations!r} "
                f"(total {window._reserved_total})",
            )
