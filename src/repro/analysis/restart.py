"""Restartability verification of exception-handler images.

The paper's mechanisms all assume handlers are *restartable*: a handler
may be squashed at any point (another thread's trap, a page-fault
reversion, an overfetch squash) and re-fetched from its entry, so every
prefix of its execution must be harmless to replay.  PR 5's differential
fuzzer found two violations of this contract dynamically — both
back-to-back-trap interleavings where a second handler generation ran
against state the first generation had already committed.  This pass
rejects the underlying *patterns* statically, before a fuzzer ever has
to get lucky with an interleaving.

The analysis is a small abstract interpreter over the assembled handler
image, on top of the PR 2 CFG machinery (:mod:`repro.analysis.cfg`).
Per basic block it tracks a four-component abstract state:

``reverted``
    *Must* analysis: has ``hardexc`` executed on **every** path to this
    point?  Reversion re-arms the traditional mechanism, after which
    non-idempotent effects (stores, latch writes) are safe — the
    excepting instruction will restart under a mechanism that rebuilds
    the state the handler consumed.
``commits``
    *May* analysis (capped at 2): the maximum number of commit-point
    instructions (``tlbwr`` / ``mtdst``) executed on **some** path.  A
    restartable handler commits exactly once per generation; a second
    reachable commit is precisely the fuzzer's back-to-back-trap bug
    class (a retry loop replaying a stale generation's commit, or an
    old generation's ``mtdst`` renaming against the newer trap's
    ``EXC_DST`` latch).
``saved`` / ``restored``
    ``SCRATCH`` save/restore pairing: ``saved`` is *may* (some path
    wrote ``SCRATCH``), ``restored`` is *must* (every path since the
    save read it back).  An exit with an unbalanced save leaks state
    into the next handler generation.

Diagnostics (all ``passname="restart"``):

========================== ======== ==========================================
code                       severity meaning
========================== ======== ==========================================
restart-clobber-user-reg   error    destination register outside the PAL
                                    shadow bank (or any FP register, or the
                                    implicit ``r30`` of ``call``/``calli``) —
                                    live user state clobbered on replay
restart-clobber-priv-latch error    ``mtpr`` to a hardware-latched exception
                                    register (VA/PTBR/EXC_PC/PS/EXC_SRC/
                                    EXC_DST) before reversion
restart-store-unreverted   error    memory store reachable where reversion is
                                    not guaranteed — replay applies it twice
restart-recommit           error    second ``tlbwr``/``mtdst`` reachable on
                                    one path (the two PR 5 bug patterns)
restart-no-reti            error    reachable ``halt`` — the handler never
                                    returns to the excepting instruction
restart-save-not-restored  warning  ``reti`` reachable with a ``SCRATCH``
                                    save not restored on every path
restart-indirect-flow      warning  ``jmpi``/``calli``/``ret`` — successors
                                    unbounded, analysis is conservative
========================== ======== ==========================================

Suppression uses the guest lint's comment syntax: ``; lint: ok(code)``
on the flagged line.  Drive the pass with ``repro-lint restart`` (or the
default ``repro-lint`` run, which covers every mechanism's handler
images from :mod:`repro.exceptions.handler_code`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.cfg import build_cfg
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.guest import _scan_source
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import SRC_FP, SRC_INT, Instruction, Opcode
from repro.isa.registers import SHADOW_BASE, PrivReg

__all__ = [
    "MECHANISMS",
    "analyze_handler_image",
    "analyze_handler_source",
    "lint_mechanism_handlers",
    "mechanism_images",
]

#: Instructions that commit the handler's work for this generation.
COMMIT_OPS = frozenset({Opcode.TLBWR, Opcode.ITLBWR, Opcode.MTDST})

#: Privileged registers latched by hardware at trap time.  Overwriting
#: one before reversion destroys the state a replayed generation (or a
#: back-to-back second trap) depends on.  ``SCRATCH`` is the one PAL
#: register handlers may freely use.
LATCHED_PRIV = frozenset(
    {
        PrivReg.VA,
        PrivReg.PTBR,
        PrivReg.EXC_PC,
        PrivReg.PS,
        PrivReg.EXC_SRC,
        PrivReg.EXC_DST,
    }
)

#: Indirect control flow the abstract interpreter cannot bound (``reti``
#: is fine: it *exits* the image rather than jumping within it).
_INDIRECT_UNSUPPORTED = frozenset({Opcode.JMPI, Opcode.CALLI, Opcode.RET})

#: The five mechanism configurations (mirrors ``make_mechanism``).
MECHANISMS = ("traditional", "multithreaded", "hardware", "quickstart", "perfect")

#: Abstract state: (must_reverted, may_commits, may_saved, must_restored).
_ENTRY_STATE = (0, 0, 0, 1)


def _join(a: tuple[int, int, int, int], b: tuple[int, int, int, int]):
    # must components meet (min), may components join (max).
    return (min(a[0], b[0]), max(a[1], b[1]), max(a[2], b[2]), min(a[3], b[3]))


def _transfer(state: tuple[int, int, int, int], inst: Instruction):
    """Abstract effect of one instruction (no diagnostics)."""
    reverted, commits, saved, restored = state
    op = inst.op
    if op is Opcode.HARDEXC:
        reverted = 1
    elif op in COMMIT_OPS:
        commits = min(2, commits + 1)
    elif op is Opcode.MTPR and inst.imm == PrivReg.SCRATCH:
        saved, restored = 1, 0
    elif op is Opcode.MFPR and inst.imm == PrivReg.SCRATCH:
        restored = 1
    return (reverted, commits, saved, restored)


class _Reporter:
    """Collects deduplicated diagnostics with line/label attribution."""

    def __init__(
        self,
        unit: str,
        file: str | None,
        labels: Mapping[str, int],
        pc_lines: Mapping[int, int],
        suppress: Mapping[int, frozenset[str]] | Mapping[int, set[str]],
    ) -> None:
        self.unit = unit
        self.file = file
        self.pc_lines = pc_lines
        self.suppress = suppress
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, int]] = set()
        self._label_at = sorted((pc, name) for name, pc in labels.items())

    def _label_of(self, pc: int) -> str | None:
        best = None
        for start, name in self._label_at:
            if start > pc:
                break
            best = name
        return best

    def emit(self, severity: Severity, code: str, pc: int, message: str) -> None:
        if (code, pc) in self._seen:
            return
        if code in self.suppress.get(pc, frozenset()):
            return
        self._seen.add((code, pc))
        self.diagnostics.append(
            Diagnostic(
                passname="restart",
                code=code,
                severity=severity,
                unit=self.unit,
                message=message,
                pc=pc,
                line=self.pc_lines.get(pc),
                label=self._label_of(pc),
                file=self.file,
            )
        )


def _check_inst(
    rep: _Reporter, pc: int, inst: Instruction, state: tuple[int, int, int, int]
) -> None:
    """Emit diagnostics for ``inst`` given the abstract state *before* it."""
    reverted, commits, saved, restored = state
    op = inst.op

    if inst.dest_kind and inst.rd is not None:
        if inst.dest_kind == SRC_FP:
            rep.emit(
                Severity.ERROR,
                "restart-clobber-user-reg",
                pc,
                f"writes f{inst.rd}: FP registers have no PAL shadow bank, "
                "so a squashed-and-replayed handler clobbers live user state",
            )
        elif inst.dest_kind == SRC_INT and 0 < inst.dest_idx < SHADOW_BASE:
            rep.emit(
                Severity.ERROR,
                "restart-clobber-user-reg",
                pc,
                f"writes user register r{inst.rd} outside the PAL shadow "
                "bank (only r1-r7 shadow; see pal_reg)",
            )
    if op in (Opcode.CALL, Opcode.CALLI):
        rep.emit(
            Severity.ERROR,
            "restart-clobber-user-reg",
            pc,
            f"{op.value} writes the return address to user register r30, "
            "which has no PAL shadow",
        )

    if op is Opcode.MTPR and inst.imm in LATCHED_PRIV and not reverted:
        rep.emit(
            Severity.ERROR,
            "restart-clobber-priv-latch",
            pc,
            f"mtpr to {PrivReg(inst.imm).name} overwrites a hardware-latched "
            "exception register before reversion; a back-to-back trap "
            "re-enters the handler with corrupt latch state",
        )

    if inst.is_store and not reverted:
        rep.emit(
            Severity.ERROR,
            "restart-store-unreverted",
            pc,
            "memory store reachable before the hardexc reversion point; "
            "a squashed-and-replayed handler generation applies it twice",
        )

    if op in COMMIT_OPS and commits >= 1:
        rep.emit(
            Severity.ERROR,
            "restart-recommit",
            pc,
            f"second {op.value} reachable on one path: a replayed or stale "
            "handler generation would commit against the newer trap's "
            "latches (the fuzz-found back-to-back-trap pattern)",
        )

    if op is Opcode.HALT:
        rep.emit(
            Severity.ERROR,
            "restart-no-reti",
            pc,
            "handler terminates with halt instead of reti; the excepting "
            "instruction never restarts",
        )

    if op is Opcode.RETI and saved and not restored:
        rep.emit(
            Severity.WARNING,
            "restart-save-not-restored",
            pc,
            "reti reachable with SCRATCH saved but not restored on every "
            "path; the next handler generation inherits a stale save",
        )

    if op in _INDIRECT_UNSUPPORTED:
        rep.emit(
            Severity.WARNING,
            "restart-indirect-flow",
            pc,
            f"{op.value}: indirect control flow inside a handler image; "
            "restartability is checked conservatively (every label becomes "
            "an entry)",
        )


def analyze_handler_image(
    insts: Sequence[Instruction],
    labels: Mapping[str, int],
    *,
    unit: str,
    file: str | None = None,
    pc_lines: Mapping[int, int] | None = None,
    suppress: Mapping[int, frozenset[str]] | None = None,
) -> list[Diagnostic]:
    """Run the restartability checks over one assembled handler image."""
    rep = _Reporter(unit, file, labels, pc_lines or {}, suppress or {})
    if not insts:
        return rep.diagnostics
    cfg = build_cfg(insts, roots=(0,), labels=labels)

    # Fixpoint over reachable blocks.  Non-entry roots (labels promoted
    # to roots by indirect flow) start from the entry state too — the
    # accompanying restart-indirect-flow warning flags the imprecision.
    in_state: dict[int, tuple[int, int, int, int]] = {}
    worklist: list[int] = []
    for root in cfg.roots:
        if root not in in_state:
            in_state[root] = _ENTRY_STATE
            worklist.append(root)
    while worklist:
        start = worklist.pop()
        block = cfg.blocks[start]
        state = in_state[start]
        for pc in range(block.start, block.end):
            state = _transfer(state, insts[pc])
        for succ in block.succs:
            merged = state if succ not in in_state else _join(in_state[succ], state)
            if merged != in_state.get(succ):
                in_state[succ] = merged
                worklist.append(succ)

    # Reporting sweep with the converged states.
    for start in sorted(in_state):
        block = cfg.blocks[start]
        state = in_state[start]
        for pc in range(block.start, block.end):
            _check_inst(rep, pc, insts[pc], state)
            state = _transfer(state, insts[pc])
    return rep.diagnostics


def analyze_handler_source(
    text: str, *, unit: str, file: str | None = None
) -> list[Diagnostic]:
    """Assemble handler source and verify restartability.

    Honors ``; lint: ok(code)`` suppression comments, mirroring the
    guest lint.  Assembly errors are reported as ``restart/asm-error``
    rather than raised, so one broken fixture cannot abort a sweep.
    """
    pc_suppress, pc_lines = _scan_source(text)
    try:
        insts, labels = assemble(text, privileged=True)
    except AssemblerError as exc:
        return [
            Diagnostic(
                passname="restart",
                code="asm-error",
                severity=Severity.ERROR,
                unit=unit,
                message=str(exc),
                line=exc.line_no if hasattr(exc, "line_no") else None,
                file=file,
            )
        ]
    return analyze_handler_image(
        insts,
        labels,
        unit=unit,
        file=file,
        pc_lines=pc_lines,
        suppress=pc_suppress,
    )


def mechanism_images(mechanism: str) -> dict[str, str]:
    """Handler images (name -> source) a mechanism can execute.

    Every trapping mechanism fetches the same PAL images installed by
    :func:`repro.exceptions.handler_code.install_handlers`; the perfect
    machine never traps, so it has none.  Discovery mirrors the guest
    lint: any ``*_SOURCE`` string in :mod:`~repro.exceptions.handler_code`
    is an image.
    """
    if mechanism == "perfect":
        return {}
    from repro.exceptions import handler_code

    images: dict[str, str] = {}
    for name in sorted(dir(handler_code)):
        if name.endswith("_SOURCE"):
            value = getattr(handler_code, name)
            if isinstance(value, str):
                images[name.removesuffix("_SOURCE").lower()] = value
    return images


def lint_mechanism_handlers(
    mechanisms: Iterable[str] = MECHANISMS,
) -> list[Diagnostic]:
    """Verify restartability of every mechanism's handler images."""
    import repro.exceptions.handler_code as handler_code

    file = handler_code.__file__
    diagnostics: list[Diagnostic] = []
    for mech in mechanisms:
        for image, source in mechanism_images(mech).items():
            diagnostics.extend(
                analyze_handler_source(
                    source, unit=f"restart:{mech}:{image}", file=file
                )
            )
    return diagnostics
