"""Static analysis of guest programs (workloads, handlers, examples).

The analyzer builds a control-flow graph over an assembled instruction
sequence (:mod:`repro.analysis.cfg`), runs a forward must-defined
def-use dataflow over it, and reports:

========================  ========  =========================================
code                      severity  meaning
========================  ========  =========================================
``undefined-label``       error     branch to a label no pass defined
``duplicate-label``       error     the same label defined twice
``asm-error``             error     any other assembly syntax error
``unresolved-target``     error     direct branch whose target never resolved
``target-out-of-range``   error     direct branch outside the text segment
``branch-into-pal``       error     user branch targeting privileged code
``branch-out-of-pal``     warning   handler branch targeting user code
``fall-through-end``      error     control can run off the end of the text
``fall-through-pal``      error     control can fall across a privilege
                                    boundary without a branch
``priv-outside-pal``      error     privileged opcode in unprivileged code
``read-never-written``    error     a register read but never written
                                    anywhere reachable (reads as zero --
                                    almost always a missing ``li``)
``read-before-def``       warning   a register read on some path before its
                                    first write
``unreachable-code``      warning   block no root (entry, PAL entry, label
                                    for indirect units) can reach
``label-out-of-range``    warning   label naming a PC outside the text
========================  ========  =========================================

Suppression: a comment containing ``lint: ok(code, ...)`` suppresses
those codes for the instruction assembled from that line (or, on a
standalone comment/label line, for the next instruction).  Program-level
analysis accepts an explicit ``suppress`` set instead, since assembled
:class:`~repro.isa.program.Program` objects carry no comments.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

from repro.analysis.cfg import ControlFlowGraph, build_cfg, falls_through
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import FP_DEST_OPS, SRC_SPACES, Instruction
from repro.isa.program import Program
from repro.isa.registers import ZERO_REG

_SUPPRESS_RE = re.compile(r"lint:\s*ok\(([^)]*)\)")

#: A register is identified by (space, index); ``space`` is "int"/"fp".
Reg = tuple[str, int]


def inst_uses(inst: Instruction) -> list[Reg]:
    """Register sources ``inst`` reads (logical, pre-PAL-shadow indices)."""
    space_a, space_b = SRC_SPACES[inst.op]
    uses: list[Reg] = []
    if space_a is not None and inst.ra is not None:
        uses.append((space_a, inst.ra))
    if space_b is not None and inst.rb is not None:
        uses.append((space_b, inst.rb))
    return uses


def inst_defs(inst: Instruction) -> list[Reg]:
    """Register destinations ``inst`` writes."""
    if inst.rd is None:
        return []
    space = "fp" if inst.op in FP_DEST_OPS else "int"
    return [(space, inst.rd)]


class _Reporter:
    """Collects diagnostics, honoring per-PC and unit-wide suppression."""

    def __init__(
        self,
        unit: str,
        file: str | None,
        pc_suppress: Mapping[int, set[str]],
        unit_suppress: frozenset[str],
        pc_lines: Mapping[int, int],
        label_of: Mapping[int, str],
    ) -> None:
        self.unit = unit
        self.file = file
        self.pc_suppress = pc_suppress
        self.unit_suppress = unit_suppress
        self.pc_lines = pc_lines
        self.label_of = label_of
        self.diagnostics: list[Diagnostic] = []

    def emit(
        self,
        code: str,
        severity: Severity,
        message: str,
        pc: int | None = None,
        line: int | None = None,
    ) -> None:
        if code in self.unit_suppress:
            return
        if pc is not None and code in self.pc_suppress.get(pc, ()):
            return
        if line is None and pc is not None:
            line = self.pc_lines.get(pc)
        label = self.label_of.get(pc) if pc is not None else None
        self.diagnostics.append(
            Diagnostic(
                passname="guest",
                code=code,
                severity=severity,
                unit=self.unit,
                message=message,
                pc=pc,
                line=line,
                label=label,
                file=self.file,
            )
        )


def _nearest_labels(labels: Mapping[str, int], size: int) -> dict[int, str]:
    """pc -> name of the closest label at or before pc (for diagnostics)."""
    by_pc: dict[int, str] = {}
    for name, pc in sorted(labels.items(), key=lambda kv: (kv[1], kv[0])):
        if 0 <= pc < size:
            by_pc.setdefault(pc, name)
    out: dict[int, str] = {}
    current: str | None = None
    for pc in range(size):
        if pc in by_pc:
            current = by_pc[pc]
        if current is not None:
            out[pc] = current
    return out


def analyze_unit(
    insts: Sequence[Instruction],
    labels: Mapping[str, int],
    roots: Iterable[int],
    unit: str = "<unit>",
    file: str | None = None,
    suppress: Iterable[str] = (),
    pc_suppress: Mapping[int, set[str]] | None = None,
    pc_lines: Mapping[int, int] | None = None,
) -> list[Diagnostic]:
    """Run every static check over one assembled unit."""
    size = len(insts)
    labels = dict(labels)
    rep = _Reporter(
        unit=unit,
        file=file,
        pc_suppress=pc_suppress or {},
        unit_suppress=frozenset(suppress),
        pc_lines=pc_lines or {},
        label_of=_nearest_labels(labels, size),
    )
    if size == 0:
        return rep.diagnostics

    for name, pc in sorted(labels.items()):
        if pc < 0 or pc > size:
            rep.emit(
                "label-out-of-range",
                Severity.WARNING,
                f"label {name!r} names PC {pc}, outside the text segment "
                f"[0, {size}]",
            )

    # ------------------------------------------------------------------
    # Per-instruction checks (all instructions, reachable or not).
    # ------------------------------------------------------------------
    for pc, inst in enumerate(insts):
        if inst.is_priv and not inst.privileged:
            rep.emit(
                "priv-outside-pal",
                Severity.ERROR,
                f"privileged instruction {inst.op.value!r} outside a PAL "
                "handler image",
                pc=pc,
            )
        if inst.is_branch and not inst.is_indirect:
            if inst.target is None:
                rep.emit(
                    "unresolved-target",
                    Severity.ERROR,
                    f"direct branch {inst.op.value!r} has no resolved target",
                    pc=pc,
                )
            elif not 0 <= inst.target < size:
                rep.emit(
                    "target-out-of-range",
                    Severity.ERROR,
                    f"branch target {inst.target} outside the text segment "
                    f"[0, {size})",
                    pc=pc,
                )
            elif insts[inst.target].privileged and not inst.privileged:
                rep.emit(
                    "branch-into-pal",
                    Severity.ERROR,
                    f"user branch targets privileged code at PC {inst.target}",
                    pc=pc,
                )
            elif inst.privileged and not insts[inst.target].privileged:
                rep.emit(
                    "branch-out-of-pal",
                    Severity.WARNING,
                    f"handler branch targets user code at PC {inst.target}",
                    pc=pc,
                )

    # ------------------------------------------------------------------
    # CFG checks: unreachable code, fall-through hazards.
    # ------------------------------------------------------------------
    cfg = build_cfg(insts, roots, labels)
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        if block.end > block.start and start not in cfg.reachable:
            rep.emit(
                "unreachable-code",
                Severity.WARNING,
                f"block [{block.start}, {block.end}) is unreachable from "
                "every analysis root",
                pc=block.start,
            )

    for pc in sorted(cfg.reachable_pcs()):
        inst = insts[pc]
        if not falls_through(inst):
            continue
        if pc + 1 == size:
            rep.emit(
                "fall-through-end",
                Severity.ERROR,
                "control can fall off the end of the text segment "
                f"(instruction at PC {pc} is not a terminator)",
                pc=pc,
            )
        elif insts[pc + 1].privileged != inst.privileged:
            rep.emit(
                "fall-through-pal",
                Severity.ERROR,
                "control falls across a privilege boundary at PC "
                f"{pc + 1} without a branch",
                pc=pc,
            )

    _check_dataflow(insts, cfg, rep)
    return rep.diagnostics


def _check_dataflow(
    insts: Sequence[Instruction],
    cfg: ControlFlowGraph,
    rep: _Reporter,
) -> None:
    """Forward must-defined analysis; report undefined register reads.

    Entry state: only ``r0`` (hardwired zero) counts as defined.  The
    machine zero-initializes every architectural register, so these are
    lint findings about programmer intent, not undefined behavior: a
    register that is *never* written anywhere reachable reads as zero on
    every path (``read-never-written``, almost always a missing ``li``),
    while one written elsewhere but not on every path to a use is the
    classic maybe-uninitialized pattern (``read-before-def``).
    """
    reachable = sorted(cfg.reachable)
    if not reachable:
        return
    blocks = cfg.blocks
    preds: dict[int, list[int]] = {start: [] for start in reachable}
    for start in reachable:
        for succ in blocks[start].succs:
            if succ in preds:
                preds[succ].append(start)

    entry_defs: set[Reg] = {("int", ZERO_REG)}
    written: set[Reg] = set(entry_defs)
    for start in reachable:
        block = blocks[start]
        for pc in range(block.start, block.end):
            written.update(inst_defs(insts[pc]))

    # Iterate to the must-defined fixpoint.  ``None`` means "all regs"
    # (the usual top element for an intersection analysis).  Real roots
    # pin their IN state to the entry state: control can always arrive
    # there directly with only r0 defined, so no predecessor can add to
    # it.  Blocks reachable *only* through the labels-as-roots rule for
    # indirect flow (jump-table cases) stay at top -- their callers'
    # register state is unknowable, so flow-sensitive reads there are
    # not reported (the flow-insensitive never-written check still is).
    root_starts = set(cfg.roots) & set(reachable)
    ins: dict[int, set[Reg] | None] = {
        start: (set(entry_defs) if start in root_starts else None)
        for start in reachable
    }
    outs: dict[int, set[Reg] | None] = {start: None for start in reachable}
    changed = True
    while changed:
        changed = False
        for start in reachable:
            block = blocks[start]
            if start in root_starts:
                in_set: set[Reg] | None = set(entry_defs)
            else:
                in_set = None
                for pred in preds[start]:
                    pred_out = outs[pred]
                    if pred_out is None:
                        continue
                    in_set = (
                        set(pred_out) if in_set is None else in_set & pred_out
                    )
            ins[start] = set(in_set) if in_set is not None else None
            out_set = None if in_set is None else set(in_set)
            if out_set is not None:
                for pc in range(block.start, block.end):
                    out_set.update(inst_defs(insts[pc]))
            if out_set != outs[start]:
                outs[start] = out_set
                changed = True

    reported_never: set[Reg] = set()
    reported_maybe: set[Reg] = set()
    for start in reachable:
        block = blocks[start]
        in_state = ins[start]
        flow_known = in_state is not None
        current = set(in_state) if flow_known else set()
        for pc in range(block.start, block.end):
            inst = insts[pc]
            for reg in inst_uses(inst):
                space, idx = reg
                if space == "int" and idx == ZERO_REG:
                    continue
                name = f"{'f' if space == 'fp' else 'r'}{idx}"
                if reg not in written:
                    if reg not in reported_never:
                        reported_never.add(reg)
                        rep.emit(
                            "read-never-written",
                            Severity.ERROR,
                            f"register {name} is read but never written "
                            "anywhere reachable (reads as zero)",
                            pc=pc,
                        )
                elif (
                    flow_known
                    and reg not in current
                    and reg not in reported_maybe
                ):
                    reported_maybe.add(reg)
                    rep.emit(
                        "read-before-def",
                        Severity.WARNING,
                        f"register {name} may be read before its first "
                        "write on some path",
                        pc=pc,
                    )
            current.update(inst_defs(inst))


# ----------------------------------------------------------------------
# Entry points: whole programs and assembly source.
# ----------------------------------------------------------------------
def analyze_program(
    program: Program,
    unit: str = "<program>",
    file: str | None = None,
    suppress: Iterable[str] = (),
) -> list[Diagnostic]:
    """Analyze an assembled :class:`Program` (user text + PAL images).

    Roots are the program entry plus every installed PAL handler entry.
    """
    roots = {program.entry, *program.pal_entries.values()}
    return analyze_unit(
        program.insts,
        program.labels,
        roots=roots,
        unit=unit,
        file=file,
        suppress=suppress,
    )


def _scan_source(text: str) -> tuple[dict[int, set[str]], dict[int, int]]:
    """Map suppression markers and source lines to instruction indices.

    Mirrors the assembler's pass-1 line classification: comment-only and
    label lines attach their suppressions to the *next* instruction;
    trailing markers attach to their own line's instruction.
    """
    from repro.isa.assembler import _LABEL_RE, _strip_comment

    pc_suppress: dict[int, set[str]] = {}
    pc_lines: dict[int, int] = {}
    pending: set[str] = set()
    index = 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        marker = _SUPPRESS_RE.search(raw)
        codes = (
            {c.strip() for c in marker.group(1).replace(",", " ").split()}
            if marker
            else set()
        )
        stripped = _strip_comment(raw)
        if not stripped or _LABEL_RE.match(stripped):
            pending |= codes
            continue
        line_codes = codes | pending
        pending = set()
        if line_codes:
            pc_suppress[index] = line_codes
        pc_lines[index] = line_no
        index += 1
    return pc_suppress, pc_lines


_ASM_ERROR_CODES = (
    ("duplicate label", "duplicate-label"),
    ("undefined label", "undefined-label"),
    ("privileged instruction", "priv-outside-pal"),
)


def analyze_source(
    text: str,
    privileged: bool = False,
    unit: str = "<source>",
    file: str | None = None,
    entry_label: str = "main",
    suppress: Iterable[str] = (),
) -> list[Diagnostic]:
    """Assemble ``text`` and analyze it as a standalone unit.

    Assembly failures (undefined/duplicate labels, syntax errors) become
    error diagnostics instead of raising.  For privileged units the root
    is PC 0 (handler entry); for user units it is ``entry_label`` when
    defined, else PC 0.
    """
    pc_suppress, pc_lines = _scan_source(text)
    try:
        insts, labels = assemble(text, privileged=privileged)
    except AssemblerError as exc:
        message = str(exc)
        code = "asm-error"
        for needle, known in _ASM_ERROR_CODES:
            if needle in message:
                code = known
                break
        return [
            Diagnostic(
                passname="guest",
                code=code,
                severity=Severity.ERROR,
                unit=unit,
                message=message,
                line=exc.line_no,
                file=file,
            )
        ]
    entry = labels.get(entry_label, 0) if not privileged else 0
    return analyze_unit(
        insts,
        labels,
        roots={entry},
        unit=unit,
        file=file,
        suppress=suppress,
        pc_suppress=pc_suppress,
        pc_lines=pc_lines,
    )
