"""``repro-lint`` / ``python -m repro.analysis`` — the analysis driver.

With no subcommand it lints the shipped tree: every suite benchmark
program, both PAL handler images, every assembly source embedded in
``examples/``, the architecture rules over ``src/repro``, the
kernel-parity pass over the reference/fused engine pair, and the
restartability pass over every mechanism's handler images.  Exit
status is non-zero iff any error-severity finding is reported (or any
finding at all under ``--strict``).

Subcommands narrow the run::

    repro-lint guest                 # shipped guest programs only
    repro-lint guest loop.s --priv   # lint an assembly file
    repro-lint guest compress        # lint one suite benchmark
    repro-lint arch                  # architecture lint only
    repro-lint parity                # reference-vs-fused kernel drift
    repro-lint parity --selftest     # seeded-drift oracle check
    repro-lint restart               # handler restartability
    repro-lint restart handler.s     # ... over your own PAL image
    repro-lint --format json         # machine-readable findings
    repro-lint --format sarif        # GitHub code-scanning format
    repro-lint --baseline lint.json  # accept recorded pre-existing
                                     # findings; new ones still fail

``--baseline`` with ``--update-baseline`` records the current findings
(by ``pass:code:unit:pc`` fingerprint) instead of reporting them, so a
new pass can land strict without a flag day.

Example modules may declare ``LINT_OK = ("code", ...)`` to suppress
specific diagnostics for every program they build; assembly sources use
``; lint: ok(code)`` comments (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import Iterable

import repro
from repro.analysis.archlint import check_tree
from repro.analysis.diagnostics import Diagnostic, summarize
from repro.analysis.guest import analyze_program, analyze_source
from repro.isa.program import Program
from repro.workloads import BENCHMARKS, build_benchmark


def _repo_root() -> Path:
    # src/repro/__init__.py -> src/repro -> src -> repo root
    return Path(repro.__file__).resolve().parents[2]


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


# ----------------------------------------------------------------------
# Guest-program collection.
# ----------------------------------------------------------------------
def _lint_handlers() -> list[Diagnostic]:
    from repro.exceptions import handler_code

    diagnostics: list[Diagnostic] = []
    for name in dir(handler_code):
        if not name.endswith("_SOURCE"):
            continue
        source = getattr(handler_code, name)
        if not isinstance(source, str):
            continue
        unit = f"handler:{name.removesuffix('_SOURCE').lower()}"
        diagnostics.extend(
            analyze_source(
                source,
                privileged=True,
                unit=unit,
                file="src/repro/exceptions/handler_code.py",
                suppress=getattr(handler_code, "LINT_OK", ()),
            )
        )
    return diagnostics


def _lint_benchmark(name: str) -> list[Diagnostic]:
    module = sys.modules.get(BENCHMARKS[name].build.__module__)
    suppress = getattr(module, "LINT_OK", ()) if module else ()
    return analyze_program(
        build_benchmark(name), unit=f"benchmark:{name}", suppress=suppress
    )


def _import_example(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"_repro_lint_example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _lint_example(path: Path) -> list[Diagnostic]:
    """Lint the guest code an example ships: embedded assembly sources,
    module-level :class:`Program` objects, and zero-arg ``build_*``
    program builders (all example builders default every parameter)."""
    module = _import_example(path)
    suppress = tuple(getattr(module, "LINT_OK", ()))
    rel = path.name
    diagnostics: list[Diagnostic] = []
    for name in dir(module):
        if name.startswith("_"):
            continue
        value = getattr(module, name)
        unit = f"example:{path.stem}:{name}"
        if isinstance(value, str) and "SOURCE" in name:
            diagnostics.extend(
                analyze_source(
                    value,
                    unit=unit,
                    file=f"examples/{rel}",
                    suppress=suppress,
                )
            )
        elif isinstance(value, Program):
            diagnostics.extend(
                analyze_program(
                    value, unit=unit, file=f"examples/{rel}", suppress=suppress
                )
            )
        elif name.startswith("build_") and callable(value):
            try:
                program = value()
            except TypeError:
                continue  # requires arguments; not a default-buildable unit
            if isinstance(program, Program):
                diagnostics.extend(
                    analyze_program(
                        program,
                        unit=unit,
                        file=f"examples/{rel}",
                        suppress=suppress,
                    )
                )
    return diagnostics


def _lint_shipped_guests() -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for name in sorted(BENCHMARKS):
        diagnostics.extend(_lint_benchmark(name))
    diagnostics.extend(_lint_handlers())
    examples = _repo_root() / "examples"
    if examples.is_dir():
        for path in sorted(examples.glob("*.py")):
            diagnostics.extend(_lint_example(path))
    return diagnostics


def _lint_guest_targets(
    targets: Iterable[str], privileged: bool
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for target in targets:
        path = Path(target)
        if target in BENCHMARKS:
            diagnostics.extend(_lint_benchmark(target))
        elif path.suffix == ".s":
            diagnostics.extend(
                analyze_source(
                    path.read_text(),
                    privileged=privileged,
                    unit=f"file:{path.stem}",
                    file=str(path),
                )
            )
        elif path.suffix == ".py":
            diagnostics.extend(_lint_example(path))
        else:
            raise SystemExit(
                f"repro-lint: unknown guest target {target!r} (expected a "
                f"benchmark name {sorted(BENCHMARKS)}, a .s file, or an "
                "example .py file)"
            )
    return diagnostics


def _lint_restart_targets(targets: Iterable[str]) -> list[Diagnostic]:
    from repro.analysis.restart import (
        analyze_handler_source,
        lint_mechanism_handlers,
    )

    targets = list(targets)
    if not targets:
        return lint_mechanism_handlers()
    diagnostics: list[Diagnostic] = []
    for target in targets:
        path = Path(target)
        if path.suffix != ".s":
            raise SystemExit(
                f"repro-lint: unknown restart target {target!r} "
                "(expected a .s handler image)"
            )
        diagnostics.extend(
            analyze_handler_source(
                path.read_text(), unit=f"restart:file:{path.stem}", file=str(path)
            )
        )
    return diagnostics


# ----------------------------------------------------------------------
# Baselines.
# ----------------------------------------------------------------------
def _fingerprint(diag: Diagnostic) -> str:
    """Stable identity for baseline matching.

    Deliberately coarse (no message text, no file line): a recorded
    finding stays accepted across message rewording and unrelated file
    edits, while a finding with a new code, unit, or pc still fails.
    """
    return f"{diag.passname}:{diag.code}:{diag.unit}:{diag.pc}"


def _load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    payload = json.loads(path.read_text())
    return set(payload.get("fingerprints", ()))


def _write_baseline(path: Path, diagnostics: list[Diagnostic]) -> None:
    payload = {
        "version": 1,
        "fingerprints": sorted({_fingerprint(d) for d in diagnostics}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# Reporting.
# ----------------------------------------------------------------------
def _sarif_payload(diagnostics: list[Diagnostic]) -> dict:
    """Minimal SARIF 2.1.0 for GitHub code-scanning upload."""
    rules: dict[str, dict] = {}
    results = []
    for diag in diagnostics:
        rules.setdefault(
            diag.code,
            {
                "id": diag.code,
                "shortDescription": {"text": f"{diag.passname}: {diag.code}"},
            },
        )
        result = {
            "ruleId": diag.code,
            "level": "error" if diag.is_error else "warning",
            "message": {"text": f"{diag.unit}: {diag.message}"},
        }
        if diag.file:
            region = {}
            if diag.line is not None and diag.line >= 1:
                region = {"region": {"startLine": diag.line}}
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diag.file},
                        **region,
                    }
                }
            ]
        results.append(result)
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": [rules[k] for k in sorted(rules)],
                    }
                },
                "results": results,
            }
        ],
    }


def _report(
    diagnostics: list[Diagnostic],
    fmt: str,
    strict: bool,
    out=None,
    baseline: set[str] | None = None,
) -> int:
    out = out or sys.stdout
    suppressed = 0
    if baseline:
        kept = [d for d in diagnostics if _fingerprint(d) not in baseline]
        suppressed = len(diagnostics) - len(kept)
        diagnostics = kept
    errors = sum(1 for d in diagnostics if d.is_error)
    if fmt == "json":
        payload = {
            "diagnostics": [d.to_dict() for d in diagnostics],
            "errors": errors,
            "warnings": len(diagnostics) - errors,
        }
        print(json.dumps(payload, indent=2), file=out)
    elif fmt == "sarif":
        print(json.dumps(_sarif_payload(diagnostics), indent=2), file=out)
    else:
        for diag in diagnostics:
            print(diag.render(), file=out)
        summary = f"repro-lint: {summarize(diagnostics)}"
        if suppressed:
            summary += f" ({suppressed} baselined)"
        print(summary, file=out)
    if errors:
        return 1
    if strict and diagnostics:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    # SUPPRESS keeps a subparser's (unset) defaults from clobbering
    # values already parsed by the main parser, so the flags work both
    # before and after the subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=argparse.SUPPRESS,
        help="output format (default: text)",
    )
    common.add_argument(
        "--strict",
        action="store_true",
        default=argparse.SUPPRESS,
        help="exit non-zero on warnings too, not just errors",
    )
    common.add_argument(
        "--baseline",
        type=Path,
        default=argparse.SUPPRESS,
        help="baseline file of accepted pre-existing findings "
        "(see --update-baseline)",
    )
    common.add_argument(
        "--update-baseline",
        action="store_true",
        default=argparse.SUPPRESS,
        help="record the current findings into --baseline and exit 0",
    )
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        parents=[common],
        description="Static analysis for the simulator: guest-program "
        "lint, architecture lint, kernel parity, and handler "
        "restartability (see docs/ANALYSIS.md).",
    )
    sub = parser.add_subparsers(dest="command")

    guest = sub.add_parser(
        "guest",
        parents=[common],
        help="lint guest programs (default: all shipped)",
    )
    guest.add_argument(
        "targets",
        nargs="*",
        help="benchmark names, .s files, or example .py files "
        "(default: every shipped benchmark, handler, and example)",
    )
    guest.add_argument(
        "--privileged",
        action="store_true",
        help="assemble .s targets as PAL handler images",
    )

    arch = sub.add_parser(
        "arch",
        parents=[common],
        help="architecture lint over src/repro",
    )
    arch.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to lint (default: the installed repro)",
    )

    parity = sub.add_parser(
        "parity",
        parents=[common],
        help="reference-vs-fused kernel semantic-drift lint",
    )
    parity.add_argument(
        "--selftest",
        action="store_true",
        help="seed a drift (delete one fused mutation fact) and fail "
        "unless the pass flags it",
    )

    restart = sub.add_parser(
        "restart",
        parents=[common],
        help="handler-image restartability verification",
    )
    restart.add_argument(
        "targets",
        nargs="*",
        help=".s handler images to verify (default: every mechanism's "
        "shipped handler images)",
    )

    args = parser.parse_args(argv)
    fmt = getattr(args, "format", None) or "text"
    strict = bool(getattr(args, "strict", False))
    baseline_path = getattr(args, "baseline", None)
    update_baseline = bool(getattr(args, "update_baseline", False))
    if update_baseline and baseline_path is None:
        parser.error("--update-baseline requires --baseline")

    if args.command == "guest":
        if args.targets:
            diagnostics = _lint_guest_targets(args.targets, args.privileged)
        else:
            diagnostics = _lint_shipped_guests()
    elif args.command == "arch":
        diagnostics = check_tree(args.root or _package_root())
    elif args.command == "parity":
        from repro.analysis.parity import run_parity, selftest

        if args.selftest:
            ok, report = selftest()
            print(f"repro-lint parity --selftest: {report}")
            return 0 if ok else 1
        diagnostics = run_parity()
    elif args.command == "restart":
        diagnostics = _lint_restart_targets(args.targets)
    else:
        from repro.analysis.parity import run_parity
        from repro.analysis.restart import lint_mechanism_handlers

        diagnostics = (
            _lint_shipped_guests()
            + check_tree(_package_root())
            + run_parity()
            + lint_mechanism_handlers()
        )

    if update_baseline:
        _write_baseline(baseline_path, diagnostics)
        print(
            f"repro-lint: recorded {len(diagnostics)} finding(s) into "
            f"{baseline_path}"
        )
        return 0
    baseline = _load_baseline(baseline_path) if baseline_path else None
    return _report(diagnostics, fmt, strict, baseline=baseline)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
