"""Control-flow graph over assembled instruction sequences.

PCs in this ISA are instruction indices (one instruction per PC), so a
"basic block" is a half-open index range ``[start, end)``.  Leaders are
the analysis roots (program entry, PAL handler entries), every direct
branch target, and every fall-through point after a control-flow
instruction.

Indirect control flow (``jmpi``/``calli``/``ret``/``reti``) has no
static successors.  For *reachability* the builder is conservative: when
a unit contains any indirect jump or call, every label is treated as an
additional root (jump tables are built from labels, so their targets are
always labelled).  Without that rule, every jump-table case block would
be reported unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.isa.instructions import Instruction, Opcode

#: Opcodes that transfer control somewhere unknowable statically.
_INDIRECT_FLOW = frozenset({Opcode.JMPI, Opcode.CALLI, Opcode.RET, Opcode.RETI})


def falls_through(inst: Instruction) -> bool:
    """True when control can continue to ``pc + 1`` after ``inst``.

    Conditional branches fall through on not-taken; calls are assumed to
    return to the next instruction.
    """
    if inst.op is Opcode.HALT:
        return False
    if not inst.is_branch:
        return True
    return inst.is_cond_branch or inst.op in (Opcode.CALL, Opcode.CALLI)


def _successors(inst: Instruction, pc: int, size: int) -> tuple[list[int], bool]:
    """Static successor PCs of ``inst`` at ``pc``, plus indirect-exit flag."""
    succs: list[int] = []
    if inst.target is not None and 0 <= inst.target < size:
        succs.append(inst.target)
    if falls_through(inst) and pc + 1 < size:
        succs.append(pc + 1)
    return sorted(set(succs)), inst.op in _INDIRECT_FLOW


@dataclass
class BasicBlock:
    """Instructions ``[start, end)`` with successor block start PCs."""

    start: int
    end: int
    succs: list[int] = field(default_factory=list)
    #: True when the block's last instruction can leave the unit through
    #: an unknowable target (indirect jump / return).
    has_indirect_exit: bool = False


@dataclass
class ControlFlowGraph:
    """Blocks keyed by start PC, plus the reachable subset."""

    blocks: dict[int, BasicBlock]
    roots: list[int]
    reachable: set[int]

    def reachable_pcs(self) -> set[int]:
        """Every instruction index inside a reachable block."""
        pcs: set[int] = set()
        for start in self.reachable:
            block = self.blocks[start]
            pcs.update(range(block.start, block.end))
        return pcs


def build_cfg(
    insts: Sequence[Instruction],
    roots: Iterable[int],
    labels: dict[str, int] | None = None,
) -> ControlFlowGraph:
    """Build the CFG of ``insts`` and compute reachability from ``roots``.

    ``labels`` enables the conservative labels-as-roots rule for units
    with indirect control flow (see the module docstring).
    """
    size = len(insts)
    root_list = sorted({pc for pc in roots if 0 <= pc < size})

    has_indirect = any(
        inst.op in _INDIRECT_FLOW or inst.op is Opcode.CALLI for inst in insts
    )
    extra_roots: list[int] = []
    if has_indirect and labels:
        extra_roots = [pc for pc in labels.values() if 0 <= pc < size]

    # Leaders: roots, branch targets, instruction after any control flow.
    leaders: set[int] = set(root_list) | set(extra_roots)
    for pc, inst in enumerate(insts):
        if inst.target is not None and 0 <= inst.target < size:
            leaders.add(inst.target)
        if (inst.is_branch or inst.op is Opcode.HALT) and pc + 1 < size:
            leaders.add(pc + 1)
    if size:
        leaders.add(0)

    ordered = sorted(leaders)
    blocks: dict[int, BasicBlock] = {}
    for idx, start in enumerate(ordered):
        end = ordered[idx + 1] if idx + 1 < len(ordered) else size
        block = BasicBlock(start=start, end=end)
        if end > start:
            # Mid-block instructions fall through by construction; only
            # the last instruction's successors shape the graph.
            block.succs, block.has_indirect_exit = _successors(
                insts[end - 1], end - 1, size
            )
        blocks[start] = block

    # Reachability over blocks.
    reachable: set[int] = set()
    work = [pc for pc in (root_list + extra_roots) if pc in blocks]
    while work:
        start = work.pop()
        if start in reachable:
            continue
        reachable.add(start)
        for succ in blocks[start].succs:
            if succ in blocks and succ not in reachable:
                work.append(succ)

    return ControlFlowGraph(blocks=blocks, roots=root_list, reachable=reachable)
