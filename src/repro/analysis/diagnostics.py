"""Shared diagnostic record for every analysis pass.

All five passes (guest-program lint, pipeline sanitizer, architecture
lint, kernel parity, handler restartability) report through one
machine-readable shape so the CLI can render them uniformly
(``--format text`` / ``--format json`` / ``--format sarif``) and CI
can gate on severity without caring which pass produced a finding.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the lint (non-zero exit); ``WARNING``
    findings are reported but only fail under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding, locatable to a unit and (where known) a PC or line.

    ``unit`` names what was analyzed: a benchmark name, a handler, an
    example file, or a source module (architecture pass).  ``pc`` is an
    instruction index for guest findings, ``line`` a source line number
    for source-level and architecture findings; either may be ``None``
    when the finding is not tied to a single location.
    """

    passname: str  # "guest" | "arch" | "sanitizer"
    code: str  # stable finding identifier, e.g. "read-never-written"
    severity: Severity
    unit: str
    message: str
    pc: int | None = None
    line: int | None = None
    label: str | None = None
    file: str | None = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def to_dict(self) -> dict:
        """JSON-ready representation (severity flattened to its name)."""
        data = asdict(self)
        data["severity"] = self.severity.value
        return data

    def render(self) -> str:
        """One-line human-readable form."""
        where = self.unit
        if self.file:
            where = self.file
        if self.line is not None:
            where += f":{self.line}"
        elif self.pc is not None:
            where += f" pc={self.pc}"
            if self.label:
                where += f" ({self.label})"
        return f"{self.severity.value}[{self.code}] {where}: {self.message}"


def summarize(diagnostics: list[Diagnostic]) -> str:
    """A one-line count summary, e.g. ``2 errors, 1 warning``."""
    errors = sum(1 for d in diagnostics if d.is_error)
    warnings = len(diagnostics) - errors
    parts = []
    if errors:
        parts.append(f"{errors} error{'s' if errors != 1 else ''}")
    if warnings:
        parts.append(f"{warnings} warning{'s' if warnings != 1 else ''}")
    return ", ".join(parts) if parts else "clean"
