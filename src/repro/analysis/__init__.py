"""Static and runtime analysis for the simulator.

Five passes (see docs/ANALYSIS.md):

* :mod:`repro.analysis.guest` — CFG + def-use lint over assembled guest
  programs (workloads, PAL handler images, examples);
* :mod:`repro.analysis.sanitizer` — opt-in runtime invariant checker
  for the pipeline (``REPRO_SANITIZE=1`` / ``MachineConfig.sanitize``);
* :mod:`repro.analysis.archlint` — AST lint over ``src/repro`` itself
  (layering, ``__slots__`` on hot classes, nondeterminism sources);
* :mod:`repro.analysis.parity` — semantic-drift diff between the
  reference pipeline and the fused batched kernel (mutation/hook fact
  sets, the ``# parity: elided`` ledger, SoA-column coverage);
* :mod:`repro.analysis.restart` — abstract interpretation of PAL
  handler images proving they can be squashed and replayed on a
  back-to-back trap.

Drive them with ``repro-lint`` / ``python -m repro.analysis``.
"""

from repro.analysis.diagnostics import Diagnostic, Severity, summarize
from repro.analysis.guest import analyze_program, analyze_source, analyze_unit
from repro.analysis.sanitizer import PipelineSanitizer, SanitizerError

__all__ = [
    "Diagnostic",
    "PipelineSanitizer",
    "SanitizerError",
    "Severity",
    "analyze_program",
    "analyze_source",
    "analyze_unit",
    "summarize",
]
