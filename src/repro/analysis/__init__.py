"""Static and runtime analysis for the simulator.

Three passes (see docs/ANALYSIS.md):

* :mod:`repro.analysis.guest` — CFG + def-use lint over assembled guest
  programs (workloads, PAL handler images, examples);
* :mod:`repro.analysis.sanitizer` — opt-in runtime invariant checker
  for the pipeline (``REPRO_SANITIZE=1`` / ``MachineConfig.sanitize``);
* :mod:`repro.analysis.archlint` — AST lint over ``src/repro`` itself
  (layering, ``__slots__`` on hot classes, nondeterminism sources).

Drive them with ``repro-lint`` / ``python -m repro.analysis``.
"""

from repro.analysis.diagnostics import Diagnostic, Severity, summarize
from repro.analysis.guest import analyze_program, analyze_source, analyze_unit
from repro.analysis.sanitizer import PipelineSanitizer, SanitizerError

__all__ = [
    "Diagnostic",
    "PipelineSanitizer",
    "SanitizerError",
    "Severity",
    "analyze_program",
    "analyze_source",
    "analyze_unit",
    "summarize",
]
