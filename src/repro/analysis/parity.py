"""Semantic-drift detection between the reference and fused cycle kernels.

PR 6's batched engine transcribes ~1k lines of :class:`SMTCore` logic
into one fused loop (``engine/core.py:_run_to_fused``).  The two kernels
are kept bit-identical by *dynamic* digest oracles; this pass adds the
*static* half of that contract: it extracts, from each kernel's AST, the
set of

* **mutation sites** — attribute/field writes per state-bearing class
  (``ThreadContext.pc``, ``SimStats.retired``, ...), container
  mutations (``ThreadContext.rob[]``), and calls to known state-mutator
  methods (``RegisterFile.write_int()``);
* **hook sites** — mechanism dispatch (``mechanism.on_tlbwr``), fault
  injection (``faults.on_retire``), sanitizer and observability
  callbacks, branch-predictor and memory-system entry points;

and diffs them.  A fact the reference kernel has that the fused kernel
lacks is a semantic drift **error** unless ``engine/core.py`` declares
it in an explicit ledger comment::

    # parity: elided(listeners.fetch, fused loop falls back to the
    #                reference kernel whenever listeners are attached)

Ledger entries that match nothing are themselves errors, so the ledger
cannot rot.  Facts only the fused kernel has are warnings (the fused
kernel doing *extra* work is suspicious but not an invariant break) —
except hooks, where either direction is an error: an observability
event or mechanism dispatch present on one path but not the other means
the two backends are observably different machines.

Extraction is deliberately *conservative-incomplete*: receivers are
resolved through a small alias/type environment (hoisted locals like
``stats = self.stats`` and ``win_uops = window._uops`` are followed;
``super()`` calls and ``if ...listeners...`` fallback branches in the
fused kernel are excluded because they re-enter the reference path).
Anything unresolvable is skipped on both sides, so the diff never
reports noise from analysis gaps — only from genuine one-sided facts.

The pass also guards the batch layer itself:

* every per-cell SoA column ``SweepBatch.__init__`` allocates must be
  declared in ``SweepBatch._SOA_COLUMNS`` and consumed outside
  ``__init__`` (the snapshot/digest/row-view surface) — a column the
  digest protocol cannot see is exactly where backend drift would hide;
* ``engine/reference.py`` must stay a pure facade: if
  ``ReferenceEngine`` grows methods, it is no longer "the unmodified
  reference kernel behind the batch driver".

Diagnostics (all ``passname="parity"``):

========================== ======== =====================================
code                       severity meaning
========================== ======== =====================================
parity-mutation-drift      error    reference-only mutation, not in ledger
parity-hook-drift          error    hook present on one path only
parity-elided-unused       error    ledger entry matching no drift
parity-unmatched-site      warning  fused-only mutation
parity-soa-undeclared      error    SoA column not in ``_SOA_COLUMNS``
parity-soa-uncovered       error    declared column never consumed
parity-soa-unknown         error    ``_SOA_COLUMNS`` names a non-column
parity-reference-shadow    error    ``ReferenceEngine`` overrides logic
========================== ======== =====================================

Run with ``repro-lint parity`` (or the default ``repro-lint`` sweep);
``repro-lint parity --selftest`` seeds a drift by deleting one mutation
fact from the fused set and fails unless the pass flags it — the same
"a broken machine must be caught" oracle style as ``repro-fuzz
--defect``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "ParityModel",
    "check_reference_facade",
    "check_soa",
    "diff_model",
    "extract_model",
    "run_parity",
    "scan_ledger",
    "selftest",
]

# ---------------------------------------------------------------------------
# Type model
#
# Types are plain strings.  ``SMTCore`` is the canonical kernel class
# (``BatchedSMTCore`` facts normalize onto it).  Hook receivers are the
# pluggable collaborators whose *calls* are semantic events; state
# classes are where *mutations* are semantic events.
# ---------------------------------------------------------------------------

_CANONICAL = {"BatchedSMTCore": "SMTCore"}

#: Receivers whose method calls are recorded as hook facts.
HOOK_RECEIVERS = frozenset(
    {"mechanism", "faults", "listeners", "sanitizer", "bpu", "dtlb", "memory", "hierarchy"}
)

#: (type, attribute) -> value descriptor.  ``("obj", T)`` is an instance
#: of T; ``("cont", owner, attr, elem)`` is a mutable container whose
#: mutation fact is ``owner.attr[]`` and whose elements resolve to
#: ``elem``; elem may itself be a descriptor (nested containers).
ATTR_TYPES: dict[tuple[str, str], tuple] = {
    ("SMTCore", "stats"): ("obj", "SimStats"),
    ("SMTCore", "window"): ("obj", "InstructionWindow"),
    ("SMTCore", "memory"): ("obj", "memory"),
    ("SMTCore", "hierarchy"): ("obj", "hierarchy"),
    ("SMTCore", "bpu"): ("obj", "bpu"),
    ("SMTCore", "dtlb"): ("obj", "dtlb"),
    ("SMTCore", "mechanism"): ("obj", "mechanism"),
    ("SMTCore", "faults"): ("obj", "faults"),
    ("SMTCore", "listeners"): ("obj", "listeners"),
    ("SMTCore", "_sanitizer"): ("obj", "sanitizer"),
    ("SMTCore", "threads"): ("cont", "SMTCore", "threads", ("obj", "ThreadContext")),
    ("SMTCore", "_retry"): ("cont", "SMTCore", "_retry", ("obj", "Uop")),
    ("SMTCore", "_wake_buckets"): (
        "cont",
        "SMTCore",
        "_wake_buckets",
        ("cont", "SMTCore", "_wake_buckets", ("obj", "Uop")),
    ),
    ("SMTCore", "_exec_heap"): ("cont", "SMTCore", "_exec_heap", None),
    ("SMTCore", "_exec_seq"): ("cont", "SMTCore", "_exec_seq", ("obj", "Uop")),
    ("SMTCore", "fu_pool"): ("cont", "SMTCore", "fu_pool", None),
    ("InstructionWindow", "_uops"): (
        "cont",
        "InstructionWindow",
        "_uops",
        ("obj", "Uop"),
    ),
    ("InstructionWindow", "_reservations"): (
        "cont",
        "InstructionWindow",
        "_reservations",
        None,
    ),
    ("InstructionWindow", "sanitizer"): ("obj", "sanitizer"),
    ("ThreadContext", "arch"): ("obj", "RegisterFile"),
    ("ThreadContext", "rob"): ("cont", "ThreadContext", "rob", ("obj", "Uop")),
    ("ThreadContext", "fetch_buffer"): (
        "cont",
        "ThreadContext",
        "fetch_buffer",
        ("obj", "Uop"),
    ),
    ("ThreadContext", "store_queue"): (
        "cont",
        "ThreadContext",
        "store_queue",
        ("obj", "Uop"),
    ),
    ("ThreadContext", "int_map"): ("cont", "ThreadContext", "int_map", ("obj", "Uop")),
    ("ThreadContext", "fp_map"): ("cont", "ThreadContext", "fp_map", ("obj", "Uop")),
    ("ThreadContext", "priv_regs"): ("cont", "ThreadContext", "priv_regs", None),
    ("Uop", "consumers"): ("cont", "Uop", "consumers", ("obj", "Uop")),
    ("Uop", "src_a_uop"): ("obj", "Uop"),
    ("Uop", "src_b_uop"): ("obj", "Uop"),
    ("hierarchy", "l1i"): ("obj", "Cache"),
    ("hierarchy", "l1d"): ("obj", "Cache"),
    ("hierarchy", "l2"): ("obj", "Cache"),
    ("Cache", "stats"): ("obj", "CacheStats"),
    ("Cache", "bus"): ("obj", "Bus"),
    ("Cache", "_sets"): (
        "cont",
        "Cache",
        "_sets",
        ("cont", "Cache", "_sets", ("obj", "_Line")),
    ),
    ("Cache", "_mshrs"): ("cont", "Cache", "_mshrs", None),
}

#: Fallback typing for parameter / loop-variable names the kernels use.
NAME_TYPES: dict[str, tuple] = {
    "thread": ("obj", "ThreadContext"),
    "t": ("obj", "ThreadContext"),
    "master": ("obj", "ThreadContext"),
    "exc_thread": ("obj", "ThreadContext"),
    "app": ("obj", "ThreadContext"),
    "window": ("obj", "InstructionWindow"),
    "uop": ("obj", "Uop"),
    "u": ("obj", "Uop"),
    "c": ("obj", "Uop"),
    "p": ("obj", "Uop"),
    "head": ("obj", "Uop"),
    "victim": ("obj", "Uop"),
    "producer": ("obj", "Uop"),
    "consumer": ("obj", "Uop"),
    "store": ("obj", "Uop"),
    "older": ("obj", "Uop"),
    "oldest": ("obj", "Uop"),
    "boundary": ("obj", "Uop"),
    "oldest_branch": ("obj", "Uop"),
    "master_uop": ("obj", "Uop"),
    "line": ("obj", "_Line"),
}

#: ``self.<attr>`` holding a pre-bound collaborator method: calling it is
#: the hook fact on the right, no matter which alias it travels through.
BOUND_HOOK_ATTRS: dict[str, str] = {
    "_mech_tick": "mechanism.tick",
    "_mech_ports": "mechanism.service_mem_ports",
    "_mech_fetch_idle": "mechanism.fetch_idle",
}

#: Method calls on *unparsed* state classes that mutate state.  Any
#: other method call on a state class is treated as a read (the fused
#: kernel inlines read-only helpers like ``ThreadContext.can_fetch``).
KNOWN_STATE_MUTATORS = frozenset(
    {"write_int", "write_fp", "write_priv", "rebuild_rename_maps", "activate"}
)

#: Container methods that mutate the container.
CONTAINER_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

#: Module-level functions that mutate their first argument.
FUNC_MUTATORS = frozenset({"heappush", "heappop", "heapify", "heapreplace"})

#: Classes whose constructor call closes over ``__init__``.
CTOR_CLASSES = frozenset({"Uop"})

#: Pass-through builtins: ``list(x)`` resolves like ``x``.
_PASSTHROUGH_CALLS = frozenset({"list", "tuple", "sorted", "reversed", "iter"})

_LEDGER_RE = re.compile(
    r"#\s*parity:\s*elided\(\s*(?P<fact>[^,\s)]+)\s*,\s*(?P<reason>[^)]*)\)"
)


# ---------------------------------------------------------------------------
# Fact extraction
# ---------------------------------------------------------------------------


@dataclass
class _MethodIndex:
    """AST index of every class method and module function we may visit."""

    methods: dict[tuple[str, str], ast.FunctionDef] = field(default_factory=dict)
    files: dict[tuple[str, str], str] = field(default_factory=dict)

    def add_module(self, tree: ast.Module, filename: str) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        self.methods[(node.name, item.name)] = item
                        self.files[(node.name, item.name)] = filename

    def lookup(self, mro: list[str], meth: str) -> tuple[str, str] | None:
        for cls in mro:
            if (cls, meth) in self.methods:
                return (cls, meth)
        return None


#: Side-specific method resolution order for the kernel class family.
_MRO = {
    "ref": {"SMTCore": ["SMTCore"]},
    "fused": {"SMTCore": ["BatchedSMTCore", "SMTCore"]},
}
for _side in _MRO:
    for _cls in ("InstructionWindow", "Cache", "Bus", "Uop", "_DRAM"):
        _MRO[_side][_cls] = [_cls]


class FactSet(dict):
    """fact -> sorted list of ``(qualname, lineno)`` sites."""

    def record(self, fact: str, site: tuple[str, int]) -> None:
        self.setdefault(fact, [])
        if site not in self[fact]:
            self[fact].append(site)


class _Extractor:
    """Closure-based fact extraction for one side (``ref`` or ``fused``)."""

    def __init__(self, index: _MethodIndex, side: str) -> None:
        self.index = index
        self.side = side
        self.facts = FactSet()
        self._visited: set[tuple[str, str]] = set()

    # -- entry ----------------------------------------------------------
    def visit_method(self, cls: str, meth: str) -> None:
        resolved = self.index.lookup(self._mro(cls), meth)
        if resolved is None or resolved in self._visited:
            return
        self._visited.add(resolved)
        fn = self.index.methods[resolved]
        _FunctionWalker(self, resolved[0], fn).run()

    def _mro(self, cls: str) -> list[str]:
        cls = _CANONICAL.get(cls, cls)
        return _MRO[self.side].get(cls, [cls])

    def record_mutation(self, owner: str, what: str, site: tuple[str, int]) -> None:
        self.facts.record(f"mut:{_CANONICAL.get(owner, owner)}.{what}", site)

    def record_hook(self, receiver: str, meth: str, site: tuple[str, int]) -> None:
        self.facts.record(f"hook:{receiver}.{meth}", site)


class _FunctionWalker:
    """Walks one function body in statement order with an alias env."""

    def __init__(self, ex: _Extractor, owner: str, fn: ast.FunctionDef) -> None:
        self.ex = ex
        self.owner = owner
        self.fn = fn
        self.qual = f"{owner}.{fn.name}"
        self.env: dict[str, tuple] = {"self": ("obj", _CANONICAL.get(owner, owner))}
        # The fused kernel's ``if ...listeners...`` branches fall back to
        # the reference path; they are not part of the fused fact set.
        self.skip_listener_guards = owner == "BatchedSMTCore"

    def run(self) -> None:
        self._walk_body(self.fn.body)

    # -- resolution -----------------------------------------------------
    def resolve(self, node: ast.expr) -> tuple | None:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in CTOR_CLASSES:
                return ("class", node.id)
            return NAME_TYPES.get(node.id)
        if isinstance(node, ast.Attribute):
            return self._attr_lookup(self.resolve(node.value), node.attr)
        if isinstance(node, ast.Subscript):
            base = self.resolve(node.value)
            if base is not None and base[0] == "cont":
                return base[3]
            return None
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _PASSTHROUGH_CALLS:
                if node.args:
                    return self.resolve(node.args[0])
            if isinstance(node.func, ast.Name) and node.func.id in CTOR_CLASSES:
                return ("obj", node.func.id)
            if isinstance(node.func, ast.Attribute) and node.func.attr == "get":
                base = self.resolve(node.func.value)
                if base is not None and base[0] == "cont":
                    return base[3]
            return None
        if isinstance(node, ast.IfExp):
            return self.resolve(node.body) or self.resolve(node.orelse)
        return None

    def _attr_lookup(self, base: tuple | None, attr: str) -> tuple | None:
        if base is None:
            return None
        if base[0] == "obj":
            typ = base[1]
            if typ == "SMTCore" and attr in BOUND_HOOK_ATTRS:
                return ("hook", BOUND_HOOK_ATTRS[attr])
            if typ == "SMTCore" and attr == "_ifetch":
                return ("boundmeth", ("obj", "Cache"), "access")
            hit = ATTR_TYPES.get((typ, attr))
            if hit is not None:
                return hit
            if typ in HOOK_RECEIVERS:
                return ("boundhook", typ, attr)
            if self.ex.index.lookup(self.ex._mro(typ), attr) is not None:
                return ("boundmeth", base, attr)
            if attr in KNOWN_STATE_MUTATORS:
                return ("boundmeth", base, attr)
            return None
        if base[0] == "cont":
            return ("boundmeth", base, attr)
        if base[0] == "class":
            return ("classattr", base[1], attr)
        return None

    # -- statement walking ----------------------------------------------
    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            if self.skip_listener_guards and self._mentions_listeners(stmt.test):
                self._walk_body(stmt.orelse)
                return
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self._scan_expr(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
            self._walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                self._scan_expr(value)
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._handle_store(target, augmented=isinstance(stmt, ast.AugAssign))
            if isinstance(stmt, ast.Assign) and value is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        resolved = self.resolve(value)
                        if resolved is not None:
                            self.env[target.id] = resolved
                        else:
                            self.env.pop(target.id, None)
            elif isinstance(stmt, ast.AnnAssign) and value is not None:
                if isinstance(stmt.target, ast.Name):
                    resolved = self.resolve(value)
                    if resolved is not None:
                        self.env[stmt.target.id] = resolved
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._handle_store(target, augmented=False)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            pass
        # FunctionDef/ClassDef/imports inside kernel methods: none exist.

    def _bind_loop_target(self, target: ast.expr, source: ast.expr) -> None:
        if isinstance(target, ast.Name):
            resolved = self.resolve(source)
            if resolved is not None and resolved[0] == "cont" and resolved[3]:
                self.env[target.id] = resolved[3]
            elif target.id in self.env:
                del self.env[target.id]

    def _mentions_listeners(self, node: ast.expr) -> bool:
        return any(
            (isinstance(sub, ast.Attribute) and sub.attr == "listeners")
            or (isinstance(sub, ast.Name) and sub.id == "listeners")
            for sub in ast.walk(node)
        )

    # -- mutations ------------------------------------------------------
    def _handle_store(self, target: ast.expr, augmented: bool) -> None:
        site = (self.qual, target.lineno)
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_store(elt, augmented)
        elif isinstance(target, ast.Attribute):
            base = self.resolve(target.value)
            if base is not None and base[0] == "obj" and base[1] not in HOOK_RECEIVERS:
                self.ex.record_mutation(base[1], target.attr, site)
        elif isinstance(target, ast.Subscript):
            base = self.resolve(target.value)
            if base is not None and base[0] == "cont":
                self.ex.record_mutation(base[1], base[2] + "[]", site)

    # -- calls ----------------------------------------------------------
    def _scan_expr(self, node: ast.expr) -> None:
        for sub in self._calls_in(node):
            self._handle_call(sub)

    def _calls_in(self, node: ast.expr):
        """Call nodes in ``node``, not descending into lambdas."""
        stack = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, ast.Lambda):
                continue
            if isinstance(cur, ast.Call):
                yield cur
            stack.extend(ast.iter_child_nodes(cur))

    def _handle_call(self, call: ast.Call) -> None:
        site = (self.qual, call.lineno)
        func = call.func
        # super().x(...): the fused kernel's fallback to the reference
        # path; never part of the fused fact set.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            return
        if isinstance(func, ast.Name):
            if func.id in FUNC_MUTATORS and call.args:
                base = self.resolve(call.args[0])
                if base is not None and base[0] == "cont":
                    self.ex.record_mutation(base[1], base[2] + "[]", site)
                return
            if func.id in CTOR_CLASSES:
                self.ex.visit_method(func.id, "__init__")
                return
            target = self.env.get(func.id)
            if target is not None:
                self._dispatch(target, site)
            return
        if isinstance(func, ast.Attribute):
            self._dispatch(self._attr_lookup(self.resolve(func.value), func.attr), site)

    def _dispatch(self, target: tuple | None, site: tuple[str, int]) -> None:
        if target is None:
            return
        kind = target[0]
        if kind == "hook":
            receiver, _, meth = target[1].rpartition(".")
            self.ex.record_hook(receiver, meth, site)
        elif kind == "boundhook":
            self.ex.record_hook(target[1], target[2], site)
        elif kind == "boundmeth":
            recv, meth = target[1], target[2]
            if recv[0] == "cont":
                if meth in CONTAINER_MUTATORS:
                    self.ex.record_mutation(recv[1], recv[2] + "[]", site)
            elif recv[0] == "obj":
                typ = recv[1]
                if typ in HOOK_RECEIVERS:
                    self.ex.record_hook(typ, meth, site)
                elif self.ex.index.lookup(self.ex._mro(typ), meth) is not None:
                    self.ex.visit_method(typ, meth)
                elif meth in KNOWN_STATE_MUTATORS:
                    self.ex.record_mutation(typ, meth + "()", site)
        elif kind == "classattr":
            pass  # Uop.__new__: bare allocation, no semantic effect.


# ---------------------------------------------------------------------------
# Model assembly and diffing
# ---------------------------------------------------------------------------

#: Reference-path and fused-path source files, relative to the package
#: root (``src/repro``).
REFERENCE_FILES = (
    "pipeline/core.py",
    "pipeline/window.py",
    "pipeline/uop.py",
    "memory/cache.py",
    "engine/reference.py",
)
FUSED_FILES = ("engine/core.py",)

#: Closure roots per side.  The fused side deliberately excludes
#: ``step``/``_decode_fetch``: those entry points delegate whole stages
#: back to the reference kernel, so walking them would launder reference
#: facts into the fused set.
REF_ROOTS = (("SMTCore", "run_to"),)
FUSED_ROOTS = (
    ("SMTCore", "_run_to_fused"),
    ("SMTCore", "_decode_prio"),
    ("SMTCore", "_fetch_prio"),
)


@dataclass
class ParityModel:
    ref: FactSet
    fused: FactSet
    ledger: list[tuple[str, str, int]]  # (fact, reason, lineno)
    fused_file: str
    ref_file: str


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def scan_ledger(text: str) -> list[tuple[str, str, int]]:
    """``# parity: elided(fact, reason)`` entries with line numbers."""
    entries = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _LEDGER_RE.search(line)
        if m:
            entries.append((m.group("fact"), m.group("reason").strip(), lineno))
    return entries


def extract_model(root: Path | None = None) -> ParityModel:
    """Parse both kernels and extract their fact sets."""
    root = root or _package_root()
    index = _MethodIndex()
    ledger: list[tuple[str, str, int]] = []
    for rel in REFERENCE_FILES + FUSED_FILES:
        path = root / rel
        text = path.read_text()
        index.add_module(ast.parse(text), str(path))
        if rel in FUSED_FILES:
            ledger.extend(scan_ledger(text))

    ref = _Extractor(index, "ref")
    for cls, meth in REF_ROOTS:
        ref.visit_method(cls, meth)
    fused = _Extractor(index, "fused")
    for cls, meth in FUSED_ROOTS:
        fused.visit_method(cls, meth)
    return ParityModel(
        ref=ref.facts,
        fused=fused.facts,
        ledger=ledger,
        fused_file=str(root / FUSED_FILES[0]),
        ref_file=str(root / REFERENCE_FILES[0]),
    )


def _strip(fact: str) -> str:
    return fact.split(":", 1)[1]


def diff_model(model: ParityModel) -> list[Diagnostic]:
    """Diff the two fact sets against the elision ledger."""
    diagnostics: list[Diagnostic] = []
    ledger_by_fact = {fact: (reason, lineno) for fact, reason, lineno in model.ledger}
    used_ledger: set[str] = set()

    def sites(fs: FactSet, fact: str) -> str:
        return ", ".join(f"{q}:{ln}" for q, ln in sorted(fs[fact])[:3])

    for fact in sorted(model.ref.keys() - model.fused.keys()):
        name = _strip(fact)
        if name in ledger_by_fact:
            used_ledger.add(name)
            continue
        is_hook = fact.startswith("hook:")
        diagnostics.append(
            Diagnostic(
                passname="parity",
                code="parity-hook-drift" if is_hook else "parity-mutation-drift",
                severity=Severity.ERROR,
                unit="parity:kernel",
                message=(
                    f"reference kernel {'invokes' if is_hook else 'mutates'} "
                    f"{name} (at {sites(model.ref, fact)}) but the fused "
                    "kernel neither does nor declares it in a "
                    "'# parity: elided' ledger entry"
                ),
                file=model.ref_file,
                line=sorted(model.ref[fact])[0][1],
            )
        )
    for fact in sorted(model.fused.keys() - model.ref.keys()):
        name = _strip(fact)
        is_hook = fact.startswith("hook:")
        diagnostics.append(
            Diagnostic(
                passname="parity",
                code="parity-hook-drift" if is_hook else "parity-unmatched-site",
                severity=Severity.ERROR if is_hook else Severity.WARNING,
                unit="parity:kernel",
                message=(
                    f"fused kernel {'invokes' if is_hook else 'mutates'} "
                    f"{name} (at {sites(model.fused, fact)}) but the "
                    "reference kernel does not"
                ),
                file=model.fused_file,
                line=sorted(model.fused[fact])[0][1],
            )
        )
    for fact, reason, lineno in model.ledger:
        if fact not in used_ledger:
            diagnostics.append(
                Diagnostic(
                    passname="parity",
                    code="parity-elided-unused",
                    severity=Severity.ERROR,
                    unit="parity:kernel",
                    message=(
                        f"ledger entry 'parity: elided({fact}, {reason})' "
                        "matches no reference-only fact; delete it (stale "
                        "ledger entries hide real drift)"
                    ),
                    file=model.fused_file,
                    line=lineno,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# SweepBatch SoA coverage
# ---------------------------------------------------------------------------


def _is_column_value(node: ast.expr) -> bool:
    """Does this ``__init__`` RHS allocate a per-cell parallel column?"""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"array", "list"}
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return isinstance(node.left, (ast.List, ast.Constant)) or isinstance(
            node.right, (ast.List, ast.Constant)
        )
    return False


def check_soa(
    source: str, *, file: str | None = None, class_name: str = "SweepBatch"
) -> list[Diagnostic]:
    """Verify ``SweepBatch``'s SoA columns are declared and consumed.

    Every per-cell column ``__init__`` allocates must appear in the
    class's ``_SOA_COLUMNS`` declaration, and every declared column must
    be read outside ``__init__`` — i.e. be visible to the row-view /
    digest / results surface.  A column the protocol cannot see is a
    place where a future backend could stash semantics the digest oracle
    never compares.
    """
    diagnostics: list[Diagnostic] = []
    tree = ast.parse(source)
    cls = next(
        (
            n
            for n in tree.body
            if isinstance(n, ast.ClassDef) and n.name == class_name
        ),
        None,
    )
    if cls is None:
        return diagnostics

    declared: dict[str, int] = {}
    columns: dict[str, int] = {}
    consumed: set[str] = set()
    for item in cls.body:
        if isinstance(item, (ast.Assign, ast.AnnAssign)):
            targets = item.targets if isinstance(item, ast.Assign) else [item.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "_SOA_COLUMNS":
                    value = item.value
                    if isinstance(value, (ast.Tuple, ast.List)):
                        for elt in value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                declared[elt.value] = elt.lineno
        elif isinstance(item, ast.FunctionDef):
            if item.name == "__init__":
                for node in ast.walk(item):
                    if (
                        isinstance(node, (ast.Assign, ast.AnnAssign))
                        and node.value is not None
                    ):
                        tgts = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for tgt in tgts:
                            if (
                                isinstance(tgt, ast.Attribute)
                                and isinstance(tgt.value, ast.Name)
                                and tgt.value.id == "self"
                                and _is_column_value(node.value)
                            ):
                                columns[tgt.attr] = tgt.lineno
    # Consumption = attribute use in any SweepBatch method other than
    # __init__, or anywhere else in the module (the row view and the
    # engine facade are the digest/results surface).
    consumed = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name != "__init__":
                    for sub in ast.walk(item):
                        if isinstance(sub, ast.Attribute):
                            consumed.add(sub.attr)
        elif isinstance(node, ast.ClassDef):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute):
                    consumed.add(sub.attr)

    for col, lineno in sorted(columns.items()):
        if col not in declared:
            diagnostics.append(
                Diagnostic(
                    passname="parity",
                    code="parity-soa-undeclared",
                    severity=Severity.ERROR,
                    unit="parity:soa",
                    message=(
                        f"{class_name}.__init__ allocates per-cell column "
                        f"{col!r} but {class_name}._SOA_COLUMNS does not "
                        "declare it; undeclared columns are invisible to "
                        "the snapshot/digest protocol"
                    ),
                    file=file,
                    line=lineno,
                )
            )
    for col, lineno in sorted(declared.items()):
        if col not in columns:
            diagnostics.append(
                Diagnostic(
                    passname="parity",
                    code="parity-soa-unknown",
                    severity=Severity.ERROR,
                    unit="parity:soa",
                    message=(
                        f"{class_name}._SOA_COLUMNS declares {col!r} but "
                        "__init__ allocates no such column"
                    ),
                    file=file,
                    line=lineno,
                )
            )
        elif col not in consumed:
            diagnostics.append(
                Diagnostic(
                    passname="parity",
                    code="parity-soa-uncovered",
                    severity=Severity.ERROR,
                    unit="parity:soa",
                    message=(
                        f"SoA column {col!r} is declared but never read "
                        "outside __init__; the digest/row-view surface "
                        "cannot observe it"
                    ),
                    file=file,
                    line=declared[col],
                )
            )
    return diagnostics


def check_reference_facade(source: str, *, file: str | None = None) -> list[Diagnostic]:
    """``ReferenceEngine`` must stay a pure facade over ``SMTCore``."""
    diagnostics: list[Diagnostic] = []
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "ReferenceEngine":
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    diagnostics.append(
                        Diagnostic(
                            passname="parity",
                            code="parity-reference-shadow",
                            severity=Severity.ERROR,
                            unit="parity:kernel",
                            message=(
                                f"ReferenceEngine defines {item.name}(); the "
                                "reference backend must stay the unmodified "
                                "SMTCore kernel behind the batch driver"
                            ),
                            file=file,
                            line=item.lineno,
                        )
                    )
    return diagnostics


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_parity(root: Path | None = None) -> list[Diagnostic]:
    """The full parity pass: kernel diff + SoA coverage + facade check."""
    root = root or _package_root()
    diagnostics = diff_model(extract_model(root))
    batched = root / "engine" / "batched.py"
    diagnostics.extend(check_soa(batched.read_text(), file=str(batched)))
    reference = root / "engine" / "reference.py"
    diagnostics.extend(check_reference_facade(reference.read_text(), file=str(reference)))
    return diagnostics


#: The fact the selftest deletes from the fused set.  ``ThreadContext.pc``
#: is the reference kernel's most load-bearing mutation: losing it means
#: the fused kernel never advances a thread.
SELFTEST_FACT = "mut:ThreadContext.pc"


def selftest(root: Path | None = None) -> tuple[bool, str]:
    """Seed a drift and verify the pass catches it.

    Mirrors ``repro-fuzz --defect``: delete one mutation site from the
    fused kernel's extracted fact set and demand the diff turn red.
    Returns ``(ok, report)``.
    """
    model = extract_model(root)
    if SELFTEST_FACT not in model.ref or SELFTEST_FACT not in model.fused:
        return False, (
            f"selftest fact {SELFTEST_FACT} missing from extraction "
            f"(ref: {SELFTEST_FACT in model.ref}, "
            f"fused: {SELFTEST_FACT in model.fused}); the extractor lost "
            "its anchor"
        )
    del model.fused[SELFTEST_FACT]
    found = [
        d
        for d in diff_model(model)
        if d.code == "parity-mutation-drift" and _strip(SELFTEST_FACT) in d.message
    ]
    if not found:
        return False, (
            f"seeded drift NOT caught: deleting {SELFTEST_FACT} from the "
            "fused fact set produced no parity-mutation-drift error"
        )
    return True, (
        f"seeded drift caught: deleting {SELFTEST_FACT} from the fused "
        f"fact set produced {len(found)} parity-mutation-drift error(s)"
    )
