"""Machine-state capture and restore over the snapshot protocol.

Every state-bearing class in the simulator implements an explicit
``snapshot_state(ctx)`` / ``restore_state(state, ctx)`` pair (plus a
``from_state`` / ``link_state`` two-phase variant for objects that
reference each other: uops and exception instances).  Nothing is
pickled: every field is enumerated by hand, and
:mod:`repro.analysis.archlint` verifies that no mutable architectural
field is silently missing from a class's snapshot methods.

This module supplies the :class:`SnapshotContext` those protocols
reference each other through, and the two orchestrators:

* :func:`capture_machine` walks an idle (between ``step()`` boundaries)
  :class:`~repro.sim.simulator.Simulator` and produces one JSON-safe
  body dict;
* :func:`restore_machine` rebuilds that state onto a freshly
  constructed simulator of the same configuration (same workload, same
  engine), in two phases: materialize all uops/instances from scalars,
  then patch the object links between them.

Object links are encoded as stable references -- uops by global fetch
sequence number, exception instances by allocator id, threads by tid,
programs by position in the simulator's program list -- and static
instruction text is never serialized at all: a restored uop re-fetches
its :class:`~repro.isa.instructions.Instruction` from the program image
(PAL handler code lives in the same image, so handler PCs resolve too).
"""

from __future__ import annotations

import dataclasses

from repro.branch.ras import RASCheckpoint
from repro.branch.unit import BranchCheckpoint
from repro.checkpoint.format import (
    CheckpointMismatchError,
    read_checkpoint,
    write_checkpoint,
)
from repro.exceptions.base import (
    ExceptionInstance,
    instance_id_state,
    restore_instance_id_state,
)
from repro.exceptions.limits import LimitKnobs
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.uop import Uop
from repro.sim.config import FUPool, MachineConfig

#: Config fields a *warm* restore may legitimately differ on: the whole
#: point of a warm checkpoint is attaching a different mechanism to a
#: shared warmed machine, and the sanitizer is pure instrumentation.
_WARM_VARIANT_FIELDS = frozenset({"mechanism", "sanitize"})


class SnapshotContext:
    """Shared reference registry for one capture or restore pass.

    Capture side: ``uop_ref``/``instance_ref`` turn objects into stable
    references and register them for encoding; :meth:`encode_registered`
    drains the registry to a fixpoint (encoding a uop may register its
    producers, encoding an instance its waiters).

    Restore side: ``admit_*`` populate the registry from decoded state
    and ``resolve_*`` look references back up.
    """

    __slots__ = (
        "core",
        "programs",
        "_uops",
        "_instances",
        "_pending_uops",
        "_pending_instances",
    )

    def __init__(self, core, programs) -> None:
        self.core = core
        self.programs = list(programs)
        self._uops: dict[int, Uop] = {}
        self._instances: dict[int, ExceptionInstance] = {}
        self._pending_uops: list[Uop] = []
        self._pending_instances: list[ExceptionInstance] = []

    # -- capture side ---------------------------------------------------
    def uop_ref(self, uop: Uop | None) -> int | None:
        """Reference a uop by seq, registering it for encoding."""
        if uop is None:
            return None
        if uop.seq not in self._uops:
            self._uops[uop.seq] = uop
            self._pending_uops.append(uop)
        return uop.seq

    def instance_ref(self, instance: ExceptionInstance | None) -> int | None:
        """Reference an exception instance by id, registering it."""
        if instance is None:
            return None
        if instance.id not in self._instances:
            self._instances[instance.id] = instance
            self._pending_instances.append(instance)
        return instance.id

    def encode_registered(self) -> tuple[list[dict], list[dict]]:
        """Encode every registered uop/instance, to a fixpoint.

        Encoding can register new objects (an in-flight uop's producers,
        an instance's waiters), so the drain loops until both queues are
        empty; the closure is bounded because completed uops prune their
        links (see :meth:`repro.pipeline.uop.Uop.snapshot_state`).
        """
        uops: dict[int, dict] = {}
        instances: dict[int, dict] = {}
        while self._pending_uops or self._pending_instances:
            while self._pending_uops:
                uop = self._pending_uops.pop()
                uops[uop.seq] = uop.snapshot_state(self)
            while self._pending_instances:
                instance = self._pending_instances.pop()
                instances[instance.id] = instance.snapshot_state(self)
        return (
            [uops[seq] for seq in sorted(uops)],
            [instances[iid] for iid in sorted(instances)],
        )

    # -- restore side ---------------------------------------------------
    def admit_uop(self, uop: Uop) -> Uop:
        self._uops[uop.seq] = uop
        return uop

    def admit_instance(self, instance: ExceptionInstance) -> ExceptionInstance:
        self._instances[instance.id] = instance
        return instance

    def resolve_uop(self, seq: int | None) -> Uop | None:
        if seq is None:
            return None
        try:
            return self._uops[seq]
        except KeyError:
            raise ValueError(f"snapshot references unknown uop #{seq}") from None

    def resolve_instance(self, iid: int | None) -> ExceptionInstance | None:
        if iid is None:
            return None
        try:
            return self._instances[iid]
        except KeyError:
            raise ValueError(
                f"snapshot references unknown exception instance {iid}"
            ) from None

    def resolve_thread(self, tid: int | None):
        if tid is None:
            return None
        return self.core.threads[tid]

    # -- shared helpers -------------------------------------------------
    def program_index(self, program) -> int | None:
        """Position of ``program`` in the simulator's program list."""
        if program is None:
            return None
        for idx, candidate in enumerate(self.programs):
            if candidate is program:
                return idx
        raise ValueError("snapshot reached a program not loaded in this simulator")

    def program_at(self, idx: int | None):
        return None if idx is None else self.programs[idx]

    def thread_program_ref(self, tid: int) -> int:
        """Program index for a uop's owning thread.

        Every snapshot-reachable uop belongs to a non-idle thread (idle
        contexts clear their rename maps and ROB), so the thread always
        has a program bound.
        """
        idx = self.program_index(self.core.threads[tid].program)
        if idx is None:
            raise ValueError(f"thread {tid} has in-flight uops but no program")
        return idx

    def instruction_at(self, prog_idx: int, pc: int):
        """Re-fetch static instruction text for a restored uop."""
        inst = self.programs[prog_idx].fetch(pc)
        if inst is None:
            raise ValueError(
                f"snapshot uop pc {pc} is outside program {prog_idx}'s text"
            )
        return inst

    @staticmethod
    def make_branch_checkpoint(data: list | None) -> BranchCheckpoint | None:
        """Rebuild a frozen branch checkpoint from ``[ghr, path, tos, top]``."""
        if data is None:
            return None
        ghr, path, tos, top_value = data
        return BranchCheckpoint(
            ghr=ghr, path=path, ras=RASCheckpoint(tos=tos, top_value=top_value)
        )


# ----------------------------------------------------------------------
def machine_config_from_dict(data: dict) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its ``asdict`` form."""
    kwargs = dict(data)
    if kwargs.get("fu_pool") is not None:
        kwargs["fu_pool"] = FUPool(**kwargs["fu_pool"])
    kwargs["hierarchy"] = HierarchyConfig(**kwargs["hierarchy"])
    kwargs["limits"] = LimitKnobs(**kwargs["limits"])
    return MachineConfig(**kwargs)


def check_config_compatible(
    config: MachineConfig, saved: dict, warm: bool
) -> None:
    """Reject restores onto a differently shaped machine."""
    current = dataclasses.asdict(config)
    ignore = _WARM_VARIANT_FIELDS if warm else frozenset()
    # Checkpoints written before a config field existed omit its key;
    # such a machine behaves as the field's default, so compare against
    # that rather than rejecting every old snapshot outright.
    defaults = dataclasses.asdict(MachineConfig())
    diffs = sorted(
        key
        for key in set(current) | set(saved)
        if key not in ignore
        and current.get(key, defaults.get(key))
        != saved.get(key, defaults.get(key))
    )
    if diffs:
        raise CheckpointMismatchError(
            "machine configuration differs from the snapshot's on: "
            + ", ".join(diffs)
        )


def capture_machine(sim) -> dict:
    """Serialize a simulator's complete machine state to a body dict.

    Read-only: capturing never perturbs the machine, so a run that was
    snapshotted mid-way stays bit-identical to one that was not.  Must
    be called between ``step()`` boundaries (the core enforces this).
    """
    from repro.sim.parallel import engine_fingerprint

    core = sim.core
    ctx = SnapshotContext(core, sim.programs)
    core_state = core.snapshot_state(ctx)
    mech_state = (
        core.mechanism.snapshot_state(ctx) if core.mechanism is not None else None
    )
    uops, instances = ctx.encode_registered()
    return {
        "engine": engine_fingerprint(),
        "config": dataclasses.asdict(sim.config),
        "memory": sim.memory.snapshot_state(ctx),
        "page_table": sim.page_table.snapshot_state(ctx),
        "dtlb": sim.dtlb.snapshot_state(ctx),
        "itlb": sim.itlb.snapshot_state(ctx) if sim.itlb is not None else None,
        "hierarchy": sim.hierarchy.snapshot_state(ctx),
        "bpu": sim.bpu.snapshot_state(ctx),
        "core": core_state,
        "mechanism": mech_state,
        "uops": uops,
        "instances": instances,
        "instance_next_id": instance_id_state(),
    }


def restore_machine(sim, body: dict, warm: bool = False) -> None:
    """Rebuild captured state onto a freshly constructed simulator.

    The simulator must have been built from the same workload and the
    same engine sources.  An *exact* restore reproduces everything,
    including the mechanism's in-flight bookkeeping, so restore-then-run
    is bit-identical to straight-through.  A *warm* restore attaches a
    (possibly different) mechanism to a quiesced architectural state:
    the mechanism keeps its freshly-attached empty state, and TLB
    contents are only restored when the TLB kinds match (a ``perfect``
    machine has no real TLB to warm).
    """
    from repro.sim.parallel import engine_fingerprint

    if body.get("engine") != engine_fingerprint():
        raise CheckpointMismatchError(
            f"checkpoint was written by engine {body.get('engine')!r}, "
            f"these sources are {engine_fingerprint()!r} "
            "(regenerate the checkpoint)"
        )
    check_config_compatible(sim.config, body["config"], warm=warm)

    core = sim.core
    ctx = SnapshotContext(core, sim.programs)
    # Phase A: materialize every uop and instance from scalars.
    for ustate in body["uops"]:
        ctx.admit_uop(Uop.from_state(ustate, ctx))
    for istate in body["instances"]:
        ctx.admit_instance(ExceptionInstance.from_state(istate))
    # Phase B: self-contained structures.
    sim.memory.restore_state(body["memory"], ctx)
    sim.page_table.restore_state(body["page_table"], ctx)
    own_kind = sim.dtlb.snapshot_state(ctx)["kind"]
    if body["dtlb"]["kind"] == own_kind:
        sim.dtlb.restore_state(body["dtlb"], ctx)
    elif not warm:
        raise CheckpointMismatchError(
            f"checkpoint holds {body['dtlb']['kind']!r} TLB state, "
            f"this machine has a {own_kind!r} TLB"
        )
    # Pre-scenario checkpoints carry no "itlb" key; a machine without an
    # ITLB ignores any saved one (warm restores may legitimately differ).
    itlb_body = body.get("itlb")
    if sim.itlb is not None and itlb_body is not None:
        if itlb_body["kind"] == sim.itlb.snapshot_state(ctx)["kind"]:
            sim.itlb.restore_state(itlb_body, ctx)
        elif not warm:
            raise CheckpointMismatchError(
                f"checkpoint holds {itlb_body['kind']!r} ITLB state, "
                "this machine has a different ITLB kind"
            )
    sim.hierarchy.restore_state(body["hierarchy"], ctx)
    sim.bpu.restore_state(body["bpu"], ctx)
    # Phase C: patch object links, then structures that hold them.
    for ustate in body["uops"]:
        ctx.resolve_uop(ustate["seq"]).link_state(ustate, ctx)
    core.restore_state(body["core"], ctx)
    for istate in body["instances"]:
        ctx.resolve_instance(istate["id"]).link_state(istate, ctx)
    if not warm and body["mechanism"] is not None and core.mechanism is not None:
        core.mechanism.restore_state(body["mechanism"], ctx)
    if not warm:
        restore_instance_id_state(body["instance_next_id"])


# ----------------------------------------------------------------------
def save_simulator_checkpoint(
    sim, path, kind: str = "exact", extra_meta: dict | None = None
) -> str:
    """Capture ``sim`` and write it as a checkpoint file; returns the hash."""
    body = capture_machine(sim)
    meta = {
        "kind": kind,
        "engine": body["engine"],
        "mechanism": sim.config.mechanism,
        "cycle": sim.core.cycle,
        "retired_user": sim.core.stats.retired_user,
    }
    if extra_meta:
        meta.update(extra_meta)
    return write_checkpoint(path, body, meta)


def restore_simulator_checkpoint(sim, path, warm: bool = False) -> dict:
    """Read a checkpoint file into ``sim``; returns the header.

    Records the restore's lineage on the simulator so results and
    manifests can report which checkpoint (by hash) a run started from.
    """
    header, body = read_checkpoint(path)
    restore_machine(sim, body, warm=warm)
    meta = header.get("meta", {})
    sim.checkpoint_lineage = {
        "hash": header["sha256"],
        "kind": meta.get("kind"),
        "warmup_insts": meta.get("warmup_insts"),
    }
    return header
