"""repro.checkpoint: deterministic snapshot/restore for the simulator.

Three layers:

* :mod:`repro.checkpoint.format` -- the on-disk container (versioned,
  integrity-hashed header + compressed canonical-JSON body).
* :mod:`repro.checkpoint.state` -- capture/restore of complete machine
  state via the explicit ``snapshot_state``/``restore_state`` protocol
  every state-bearing class implements (no pickling of live objects).
* :mod:`repro.checkpoint.warm` / :mod:`repro.checkpoint.autosave` --
  the two workflows built on top: warmup-shared checkpoints for
  per-mechanism sweeps, and periodic autosave + crash resume for long
  runs.

The headline invariant, enforced by ``tests/checkpoint/``: restore-
then-run is bit-identical to straight-through for every mechanism.
"""

from repro.checkpoint.autosave import run_with_autosave
from repro.checkpoint.format import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    CheckpointMismatchError,
    CheckpointVersionError,
    read_checkpoint,
    read_meta,
    verify_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.state import (
    SnapshotContext,
    capture_machine,
    machine_config_from_dict,
    restore_machine,
    restore_simulator_checkpoint,
    save_simulator_checkpoint,
)
from repro.checkpoint.warm import (
    attach_warm,
    build_workload,
    checkpoint_dir,
    ensure_warm_checkpoint,
    warm_checkpoint_path,
    warm_config,
    warm_token,
)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointVersionError",
    "CheckpointIntegrityError",
    "CheckpointMismatchError",
    "read_checkpoint",
    "read_meta",
    "verify_checkpoint",
    "write_checkpoint",
    "SnapshotContext",
    "capture_machine",
    "restore_machine",
    "machine_config_from_dict",
    "save_simulator_checkpoint",
    "restore_simulator_checkpoint",
    "run_with_autosave",
    "attach_warm",
    "build_workload",
    "checkpoint_dir",
    "ensure_warm_checkpoint",
    "warm_checkpoint_path",
    "warm_config",
    "warm_token",
]
