"""``python -m repro.checkpoint`` entry point."""

from repro.checkpoint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
