"""``repro-ckpt`` / ``python -m repro.checkpoint``: checkpoint tooling.

Subcommands:

* ``save``     -- warm up a workload, quiesce, write a warm checkpoint
* ``inspect``  -- print a checkpoint's header (no decompression)
* ``verify``   -- full integrity check (magic, version, hash, decode)
* ``restore``  -- rebuild a machine from a checkpoint and run it
* ``run``      -- run a workload with periodic autosaves (crash-safe)
* ``resume``   -- continue an interrupted ``run`` from its autosave

``restore``/``resume`` rebuild the simulator from the checkpoint's own
metadata (workload name and full machine configuration), so the only
inputs they need are the file and, for warm restores, the mechanism to
attach.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.checkpoint.autosave import run_with_autosave
from repro.checkpoint.format import (
    CheckpointError,
    read_checkpoint,
    read_meta,
    verify_checkpoint,
)
from repro.checkpoint.state import machine_config_from_dict
from repro.checkpoint.warm import (
    build_workload,
    ensure_warm_checkpoint,
    attach_warm,
)
from repro.sim.config import MECHANISMS, MachineConfig


def _parse_workload(raw: str) -> str | tuple[str, ...]:
    names = tuple(part.strip() for part in raw.split(",") if part.strip())
    if not names:
        raise SystemExit(f"empty workload spec {raw!r}")
    return names[0] if len(names) == 1 else names


def _print_result(result, as_json: bool) -> None:
    summary = {
        "cycles": result.cycles,
        "retired_user": result.retired_user,
        "committed_fills": result.committed_fills,
        "ipc": result.ipc,
        "mechanism": result.mechanism,
        "checkpoint": result.checkpoint,
    }
    if as_json:
        json.dump(summary, sys.stdout)
        sys.stdout.write("\n")
    else:
        for key, value in summary.items():
            print(f"{key:>16}: {value}")


def _rebuild_sim(body: dict, mechanism: str | None):
    """Construct a fresh simulator matching a checkpoint's config."""
    from repro.sim.simulator import Simulator

    meta_config = machine_config_from_dict(body["config"])
    if mechanism is not None:
        import dataclasses

        meta_config = dataclasses.replace(meta_config, mechanism=mechanism)
    # Simulator recomputes num_threads from programs + idle_threads; pass
    # the saved idle_threads through and let it re-derive the same total.
    return Simulator(build_workload(_saved_workload(body)), meta_config)


def _saved_workload(body_or_meta: dict) -> str | tuple[str, ...]:
    workload = body_or_meta.get("workload")
    if workload is None:
        raise SystemExit(
            "checkpoint does not record its workload; cannot rebuild the "
            "simulator (was it saved by Simulator.save_checkpoint directly?)"
        )
    return tuple(workload) if isinstance(workload, list) else workload


def _cmd_save(args) -> int:
    workload = _parse_workload(args.workload)
    config = MachineConfig(mechanism="traditional")
    path, digest = ensure_warm_checkpoint(
        workload, args.warmup, config, max_cycles=args.max_cycles,
    )
    if args.out is not None:
        # An explicit output path gets a copy under that name.
        import shutil

        shutil.copyfile(path, args.out)
        path = args.out
    print(f"{digest}  {path}")
    return 0


def _cmd_inspect(args) -> int:
    try:
        header = read_meta(args.path)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    json.dump(header, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _cmd_verify(args) -> int:
    try:
        header = verify_checkpoint(args.path)
    except CheckpointError as exc:
        print(f"FAIL {args.path}: {exc}", file=sys.stderr)
        return 2
    meta = header.get("meta", {})
    print(
        f"OK {args.path}: kind={meta.get('kind')} "
        f"cycle={meta.get('cycle')} sha256={header['sha256'][:16]}..."
    )
    return 0


def _cmd_restore(args) -> int:
    try:
        header, body = read_checkpoint(args.path)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    meta = header.get("meta", {})
    body.setdefault("workload", meta.get("workload"))
    warm = meta.get("kind") == "warm"
    sim = _rebuild_sim(body, args.mechanism if warm else None)
    if warm:
        attach_warm(sim, args.path)
    else:
        from repro.checkpoint.state import restore_simulator_checkpoint

        restore_simulator_checkpoint(sim, args.path)
    if args.user_insts:
        since = (
            sim.core.cycle,
            sim.mechanism.stats.committed_fills if sim.mechanism else 0,
            sim.core.stats.retired_user,
        )
        sim.core.run(args.user_insts, args.max_cycles)
        _print_result(sim.result(since=since), args.json)
    else:
        print(f"restored {args.path} at cycle {sim.core.cycle}")
    return 0


def _cmd_run(args) -> int:
    from repro.sim.simulator import Simulator

    workload = _parse_workload(args.workload)
    config = MachineConfig(mechanism=args.mechanism)
    sim = Simulator(build_workload(workload), config)
    saves = 0

    def _on_autosave(cycle: int) -> None:
        nonlocal saves
        saves += 1
        if args.die_after and saves >= args.die_after:
            # Crash injection for the resume CI job: die the way a
            # SIGKILL would, with no cleanup and no final save.
            os._exit(3)

    result = run_with_autosave(
        sim,
        args.out,
        user_insts=args.user_insts,
        warmup_insts=args.warmup,
        max_cycles=args.max_cycles,
        autosave_every=args.autosave_every,
        resume=not args.fresh,
        on_autosave=_on_autosave,
        workload=workload,
    )
    _print_result(result, args.json)
    return 0


def _cmd_resume(args) -> int:
    try:
        header, body = read_checkpoint(args.path)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    meta = header.get("meta", {})
    if meta.get("kind") != "autosave" or "run" not in meta:
        print(f"error: {args.path} is not an autosave checkpoint", file=sys.stderr)
        return 2
    body.setdefault("workload", meta.get("workload"))
    sim = _rebuild_sim(body, None)
    # Keep recording the workload: a resumed run that is itself
    # interrupted must stay resumable.
    result = run_with_autosave(sim, args.path, workload=_saved_workload(body))
    _print_result(result, args.json)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-ckpt",
        description="Save, verify, restore, and resume simulator checkpoints.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_save = sub.add_parser("save", help="write a warm checkpoint")
    p_save.add_argument("--workload", required=True)
    p_save.add_argument("--warmup", type=int, default=3_000)
    p_save.add_argument("--max-cycles", type=int, default=10_000_000)
    p_save.add_argument("--out", default=None, help="copy to this path too")
    p_save.set_defaults(func=_cmd_save)

    p_inspect = sub.add_parser("inspect", help="print the header")
    p_inspect.add_argument("path")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_verify = sub.add_parser("verify", help="full integrity check")
    p_verify.add_argument("path")
    p_verify.set_defaults(func=_cmd_verify)

    p_restore = sub.add_parser("restore", help="rebuild a machine and run it")
    p_restore.add_argument("path")
    p_restore.add_argument("--mechanism", choices=MECHANISMS, default=None)
    p_restore.add_argument("--user-insts", type=int, default=0)
    p_restore.add_argument("--max-cycles", type=int, default=10_000_000)
    p_restore.add_argument("--json", action="store_true")
    p_restore.set_defaults(func=_cmd_restore)

    p_run = sub.add_parser("run", help="run with periodic autosaves")
    p_run.add_argument("--workload", required=True)
    p_run.add_argument("--mechanism", choices=MECHANISMS, default="multithreaded")
    p_run.add_argument("--user-insts", type=int, default=20_000)
    p_run.add_argument("--warmup", type=int, default=3_000)
    p_run.add_argument("--max-cycles", type=int, default=10_000_000)
    p_run.add_argument("--autosave-every", type=int, default=100_000)
    p_run.add_argument("--out", required=True, help="autosave checkpoint path")
    p_run.add_argument("--fresh", action="store_true",
                       help="ignore an existing autosave at --out")
    p_run.add_argument("--die-after", type=int, default=0,
                       help="crash (exit 3) after N autosaves (CI resume test)")
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_resume = sub.add_parser("resume", help="continue an interrupted run")
    p_resume.add_argument("path")
    p_resume.add_argument("--json", action="store_true")
    p_resume.set_defaults(func=_cmd_resume)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
