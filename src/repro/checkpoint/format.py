"""The on-disk checkpoint container: header line + compressed body.

A checkpoint file is::

    {"magic": "repro-ckpt", "version": 1, "sha256": "...", ...}\\n
    <zlib-compressed canonical JSON body>

The header is one uncompressed JSON line so ``inspect`` and ``verify``
never have to decompress anything to identify a file.  The body is the
machine state assembled by :mod:`repro.checkpoint.state`, serialized as
*canonical* JSON (sorted keys, compact separators) so the same machine
state always produces the same bytes -- the checkpoint hash (sha256 of
the compressed body, recorded in the header) is therefore a stable
identity for "this exact machine state under this exact engine", which
the result cache and manifests key on.

Versioning policy (see docs/CHECKPOINT.md): ``FORMAT_VERSION`` is bumped
on any incompatible layout change and old versions are *rejected*, never
migrated -- a checkpoint is a cache artefact, cheap to regenerate, and a
silent misread costs days of debugging.  Engine compatibility is
enforced separately by the state layer via the source fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path

MAGIC = "repro-ckpt"
FORMAT_VERSION = 1


class CheckpointError(Exception):
    """Base class for all checkpoint failures."""


class CheckpointFormatError(CheckpointError):
    """The file is not a checkpoint (bad magic, malformed header)."""


class CheckpointVersionError(CheckpointFormatError):
    """The file is a checkpoint of an unsupported format version."""


class CheckpointIntegrityError(CheckpointError):
    """The file is truncated or its body fails the integrity hash."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint cannot be restored here (engine/config mismatch)."""


def _canonical_body(body: dict) -> bytes:
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode()


def write_checkpoint(path: str | Path, body: dict, meta: dict | None = None) -> str:
    """Write ``body`` (plus descriptive ``meta``) atomically; returns the
    checkpoint hash (sha256 of the compressed body)."""
    path = Path(path)
    payload = zlib.compress(_canonical_body(body), 6)
    digest = hashlib.sha256(payload).hexdigest()
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "sha256": digest,
        "body_bytes": len(payload),
        "meta": meta or {},
    }
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with tmp.open("wb") as fh:
        fh.write(json.dumps(header, sort_keys=True).encode())
        fh.write(b"\n")
        fh.write(payload)
    tmp.replace(path)  # atomic: a crash never leaves a half-written file
    return digest


def _read_raw(path: Path) -> tuple[dict, bytes]:
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointFormatError(f"cannot read {path}: {exc}") from None
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointFormatError(f"{path} has no checkpoint header line")
    try:
        header = json.loads(raw[:newline])
    except (ValueError, UnicodeDecodeError):
        raise CheckpointFormatError(f"{path} header is not JSON") from None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise CheckpointFormatError(f"{path} is not a {MAGIC} file")
    if header.get("version") != FORMAT_VERSION:
        raise CheckpointVersionError(
            f"{path} is checkpoint format version {header.get('version')!r}; "
            f"this engine reads only version {FORMAT_VERSION} "
            "(regenerate the checkpoint)"
        )
    return header, raw[newline + 1 :]


def read_meta(path: str | Path) -> dict:
    """The header (magic, version, hash, meta) without touching the body."""
    header, _ = _read_raw(Path(path))
    return header


def read_checkpoint(path: str | Path, verify: bool = True) -> tuple[dict, dict]:
    """Read and decode a checkpoint; returns ``(header, body)``.

    With ``verify`` (the default) the compressed body must match the
    header's sha256 exactly; truncated or corrupted files raise
    :class:`CheckpointIntegrityError` instead of yielding garbage state.
    """
    path = Path(path)
    header, payload = _read_raw(path)
    expected = header.get("body_bytes")
    if isinstance(expected, int) and len(payload) != expected:
        raise CheckpointIntegrityError(
            f"{path} body is {len(payload)} bytes, header promises "
            f"{expected} (truncated or concatenated file)"
        )
    if verify:
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise CheckpointIntegrityError(
                f"{path} body hash {digest[:12]}... does not match header "
                f"{str(header.get('sha256'))[:12]}... (corrupted file)"
            )
    try:
        body = json.loads(zlib.decompress(payload))
    except (zlib.error, ValueError) as exc:
        raise CheckpointIntegrityError(
            f"{path} body does not decode: {exc}"
        ) from None
    if not isinstance(body, dict):
        raise CheckpointFormatError(f"{path} body is not an object")
    return header, body


def verify_checkpoint(path: str | Path) -> dict:
    """Full integrity check (header + hash + decode); returns the header."""
    header, _ = read_checkpoint(path, verify=True)
    return header
