"""Warm-checkpoint sweep benchmark: ``python -m repro.checkpoint.bench``.

Times a Figure-5-style sweep (every mechanism over a benchmark suite)
two ways and writes ``BENCH_checkpoint.json``:

* **cold** -- every cell runs its own warmup in-process, the way sweeps
  ran before checkpoints existed;
* **warm** -- each workload family warms up *once* under the
  traditional mechanism, the quiesced machine is checkpointed, and all
  mechanisms attach to the shared warm state (the ``REPRO_WARM_CKPT=1``
  path of :func:`repro.sim.parallel.run_cells`).

The timed region includes the warm builds themselves -- the speedup is
what a user actually sees on a first, uncached sweep.  Both paths run
serially in-process so the ratio measures the checkpoint workflow, not
process-pool scheduling.  The result cache is disabled throughout.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.sim.config import MECHANISMS, MachineConfig
from repro.sim.parallel import CellSpec, derive_warm_cells, run_cell

#: Sweep shape: suite x every mechanism, warmup comparable to the
#: measurement window (the regime the paper's figures run in).
SUITE = ("compress", "gcc", "murphi", "vortex")
USER_INSTS = 2_000
WARMUP_INSTS = 3_000
MAX_CYCLES = 5_000_000


def make_specs() -> list[CellSpec]:
    return [
        CellSpec(
            workload=bench,
            config=MachineConfig(mechanism=mech),
            user_insts=USER_INSTS,
            warmup_insts=WARMUP_INSTS,
            max_cycles=MAX_CYCLES,
        )
        for bench in SUITE
        for mech in MECHANISMS
    ]


def time_sweep(specs: list[CellSpec], warm: bool) -> tuple[float, list]:
    start = time.perf_counter()
    if warm:
        specs = derive_warm_cells(specs)  # builds the warm checkpoints
    results = [run_cell(spec) for spec in specs]
    return time.perf_counter() - start, results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.checkpoint.bench")
    parser.add_argument("--reps", type=int, default=3, help="best-of-N")
    parser.add_argument("--output", default="BENCH_checkpoint.json")
    args = parser.parse_args(argv)

    import os
    import tempfile

    os.environ["REPRO_CACHE"] = "0"
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-bench-") as tmp:
        os.environ["REPRO_CKPT_DIR"] = tmp

        cold_best = warm_best = float("inf")
        cold_results = warm_results = None
        for _ in range(max(1, args.reps)):
            elapsed, results = time_sweep(make_specs(), warm=False)
            if elapsed < cold_best:
                cold_best, cold_results = elapsed, results
            # Fresh warm builds each rep: empty the store first.
            for stale in os.listdir(tmp):
                os.unlink(os.path.join(tmp, stale))
            elapsed, results = time_sweep(make_specs(), warm=True)
            if elapsed < warm_best:
                warm_best, warm_results = elapsed, results

    # Warm sharing must not change *what* is measured, only the cost:
    # every mechanism still retires the same user instructions.
    for cold, warm in zip(cold_results, warm_results):
        assert warm.retired_user >= USER_INSTS, "warm cell under-ran"
        assert cold.mechanism == warm.mechanism

    cells = len(make_specs())
    report = {
        "protocol": {
            "suite": list(SUITE),
            "mechanisms": list(MECHANISMS),
            "cells": cells,
            "user_insts": USER_INSTS,
            "warmup_insts": WARMUP_INSTS,
            "reps_best_of": args.reps,
            "python": platform.python_version(),
            "note": (
                "serial in-process sweep, result cache off; warm timing "
                "includes building the shared warm checkpoints"
            ),
        },
        "cold_sweep_seconds": round(cold_best, 3),
        "warm_sweep_seconds": round(warm_best, 3),
        "speedup": round(cold_best / warm_best, 3),
        "warm_checkpoints_built": len(SUITE),
        "lineage_hashes": sorted(
            {r.checkpoint["hash"][:16] for r in warm_results if r.checkpoint}
        ),
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(
        f"cold {cold_best:.2f}s  warm {warm_best:.2f}s  "
        f"speedup {report['speedup']}x  -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
