"""Periodic autosave and crash-resume for long runs.

:func:`run_with_autosave` replays :meth:`repro.sim.simulator.Simulator.run`
exactly -- warmup phase, measurement window, the same timeout semantics --
but executes it in bounded chunks through :meth:`SMTCore.run_to`, writing
an *exact* checkpoint between chunks.  Chunking is bit-identical to one
straight call (see ``run_to``), and capture is read-only, so a run that
autosaves produces the same :class:`SimResult` as one that does not.

The checkpoint's ``meta.run`` block records where in the two-phase run
the save happened (absolute per-thread retirement targets, the
measurement baseline), so a killed process resumes mid-phase and
finishes with final stats identical to an uninterrupted run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.checkpoint.format import CheckpointFormatError
from repro.checkpoint.state import (
    restore_simulator_checkpoint,
    save_simulator_checkpoint,
)


def _fresh_targets(core, insts: int) -> list:
    """Absolute retirement targets, exactly as ``SMTCore.run`` computes."""
    from repro.pipeline.thread import ThreadState

    return [
        (thread, thread.retired_user + insts)
        for thread in core.threads
        if thread.state is ThreadState.NORMAL
    ]


def _measurement_baseline(sim) -> tuple[int, int, int]:
    """The ``since`` triple ``Simulator.run`` records at measure start."""
    fills = sim.mechanism.stats.committed_fills if sim.mechanism else 0
    return (sim.core.cycle, fills, sim.core.stats.retired_user)


def _timeout(core, max_cycles: int) -> RuntimeError:
    return RuntimeError(
        f"simulation exceeded {max_cycles} cycles "
        f"(retired: {[t.retired_user for t in core.threads]})"
    )


def run_with_autosave(
    sim,
    path: str | Path,
    user_insts: int = 20_000,
    warmup_insts: int = 3_000,
    max_cycles: int = 10_000_000,
    autosave_every: int = 100_000,
    resume: bool = True,
    on_autosave: Callable[[int], None] | None = None,
    workload: str | tuple[str, ...] | None = None,
):
    """Run warmup + measurement with periodic autosaves to ``path``.

    If ``path`` already holds an autosave (and ``resume`` is true), the
    machine state and run position are restored from it and the run
    continues; the explicit ``user_insts``/``warmup_insts``/``max_cycles``
    are then taken from the autosave, which is authoritative for what
    the interrupted run was doing.  ``on_autosave`` is called with the
    current cycle after each save (tests and the CLI's ``--die-after``
    crash injection hook in here).
    """
    core = sim.core
    path = Path(path)

    run_state = None
    if resume and path.exists():
        header = restore_simulator_checkpoint(sim, path)
        run_state = header.get("meta", {}).get("run")
        if run_state is None:
            raise CheckpointFormatError(
                f"{path} is not an autosave checkpoint (no run state in meta)"
            )
    if run_state is not None:
        phase = run_state["phase"]
        targets = [
            (core.threads[tid], target) for tid, target in run_state["targets"]
        ]
        since = (
            tuple(run_state["since"]) if run_state["since"] is not None else None
        )
        user_insts = run_state["user_insts"]
        warmup_insts = run_state["warmup_insts"]
        max_cycles = run_state["max_cycles"]
    else:
        phase = "warmup" if warmup_insts else "measure"
        targets = _fresh_targets(
            core, warmup_insts if phase == "warmup" else user_insts
        )
        since = None if phase == "warmup" else _measurement_baseline(sim)

    def _autosave() -> None:
        extra: dict = {}
        if workload is not None:
            # Recorded so `repro-ckpt resume` can rebuild the machine
            # from the file alone.
            extra["workload"] = (
                list(workload) if isinstance(workload, tuple) else workload
            )
        save_simulator_checkpoint(
            sim,
            path,
            kind="autosave",
            extra_meta={
                **extra,
                "run": {
                    "phase": phase,
                    "targets": [[t.tid, target] for t, target in targets],
                    "since": list(since) if since is not None else None,
                    "user_insts": user_insts,
                    "warmup_insts": warmup_insts,
                    "max_cycles": max_cycles,
                }
            },
        )
        if on_autosave is not None:
            on_autosave(core.cycle)

    while phase == "warmup":
        if core.run_to(targets, min(max_cycles, core.cycle + autosave_every)):
            phase = "measure"
            since = _measurement_baseline(sim)
            targets = _fresh_targets(core, user_insts)
        elif core.cycle >= max_cycles:
            raise _timeout(core, max_cycles)
        else:
            _autosave()

    while True:
        if core.run_to(targets, min(max_cycles, core.cycle + autosave_every)):
            break
        if core.cycle >= max_cycles:
            raise _timeout(core, max_cycles)
        _autosave()

    return sim.result(since=since if since is not None else (0, 0, 0))
