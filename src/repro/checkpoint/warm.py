"""Warmup-shared checkpoints: one warmup, many mechanisms.

The paper's per-mechanism comparisons (Figure 5 and friends) all run the
same workload under the same machine, varying only the exception
mechanism.  Warming each cell separately repeats identical work N times
*and* lets each mechanism warm its own TLB, conflating warmup behaviour
with measured behaviour.  A *warm checkpoint* fixes both: the workload
is warmed once under the traditional mechanism, the machine is quiesced
(every in-flight instruction squashed, only architectural state --
memory, caches, TLB, predictors, register files, counters -- remains),
and the snapshot is saved.  Any mechanism then attaches to the restored
warm machine and measures from an identical starting state.

Checkpoints live in ``REPRO_CKPT_DIR`` (default
``~/.cache/repro-ckpt``), keyed by workload, warmup length, the
mechanism-independent machine configuration, and the engine source
fingerprint -- a code change can never serve a stale warm state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from pathlib import Path

from repro.checkpoint.format import CheckpointError, verify_checkpoint
from repro.checkpoint.state import (
    restore_simulator_checkpoint,
    save_simulator_checkpoint,
)
from repro.sim.config import MachineConfig


def checkpoint_dir() -> Path:
    """The checkpoint directory, validated like ``REPRO_JOBS``.

    ``REPRO_CKPT_DIR`` must name a usable directory (created if absent);
    anything else -- an existing non-directory, an uncreatable or
    unwritable path -- raises :class:`ValueError` here, at configuration
    time, instead of failing deep inside a sweep.
    """
    raw = os.environ.get("REPRO_CKPT_DIR", "").strip()
    if not raw:
        path = Path.home() / ".cache" / "repro-ckpt"
    else:
        path = Path(raw).expanduser()
        if path.exists() and not path.is_dir():
            raise ValueError(
                f"REPRO_CKPT_DIR must name a directory, got non-directory {raw!r}"
            )
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ValueError(
            f"REPRO_CKPT_DIR {raw!r} is not a usable directory: {exc}"
        ) from None
    if not os.access(path, os.W_OK):
        raise ValueError(f"REPRO_CKPT_DIR {raw!r} is not writable")
    return path


def warm_config(config: MachineConfig) -> MachineConfig:
    """The donor configuration a warm checkpoint is produced under."""
    return dataclasses.replace(config, mechanism="traditional", sanitize=False)


def warm_token(
    workload: str | tuple[str, ...], warmup_insts: int, config: MachineConfig
) -> str:
    """Stable identity of a warm state, shared by every mechanism."""
    from repro.sim.parallel import engine_fingerprint

    token = repr(
        (workload, warmup_insts, dataclasses.asdict(warm_config(config)))
    )
    return hashlib.sha256(
        f"{engine_fingerprint()}|{token}".encode()
    ).hexdigest()[:40]


def warm_checkpoint_path(
    workload: str | tuple[str, ...],
    warmup_insts: int,
    config: MachineConfig,
    directory: Path | None = None,
) -> Path:
    if directory is None:
        directory = checkpoint_dir()
    return directory / f"warm-{warm_token(workload, warmup_insts, config)}.ckpt"


def build_workload(workload: str | tuple[str, ...]):
    """Build the program(s) for a workload name or mix tuple."""
    from repro.workloads.suite import build_benchmark, build_mix

    if isinstance(workload, str):
        return build_benchmark(workload)
    return build_mix(tuple(workload))


def ensure_warm_checkpoint(
    workload: str | tuple[str, ...],
    warmup_insts: int,
    config: MachineConfig,
    max_cycles: int = 10_000_000,
    directory: Path | None = None,
) -> tuple[Path, str]:
    """Produce (or reuse) the warm checkpoint for a sweep cell family.

    Returns ``(path, checkpoint_hash)``.  An existing file is reused
    only if it verifies and was written by these exact engine sources;
    anything stale or corrupt is rebuilt in place.
    """
    from repro.sim.parallel import engine_fingerprint
    from repro.sim.simulator import Simulator

    path = warm_checkpoint_path(workload, warmup_insts, config, directory)
    if path.exists():
        try:
            header = verify_checkpoint(path)
            if header["meta"].get("engine") == engine_fingerprint():
                return path, header["sha256"]
        except CheckpointError:
            pass  # fall through and rebuild
    sim = Simulator(build_workload(workload), warm_config(config))
    sim.core.run(warmup_insts, max_cycles)
    sim.quiesce()
    digest = save_simulator_checkpoint(
        sim,
        path,
        kind="warm",
        extra_meta={
            "workload": list(workload)
            if isinstance(workload, tuple)
            else workload,
            "warmup_insts": warmup_insts,
        },
    )
    return path, digest


def attach_warm(sim, path: str | Path) -> dict:
    """Restore a warm checkpoint under whatever mechanism ``sim`` has.

    Returns the checkpoint header; the simulator's ``checkpoint_lineage``
    records the hash for results and manifests.
    """
    return restore_simulator_checkpoint(sim, path, warm=True)
