"""``repro-trace`` / ``python -m repro.obs`` — trace one run to JSON.

Runs a suite workload under one mechanism with the full observability
stack attached and writes a Chrome ``trace_event`` file (open it in
``chrome://tracing`` or Perfetto) plus, optionally, a run manifest and
a Table-3 cycle-attribution breakdown::

    repro-trace compress --mechanism multithreaded --out run.trace.json
    repro-trace compress li --mechanism traditional --attribution
    repro-trace compress --validate          # schema-check what it wrote

``--validate`` re-reads every file the run produced and schema-checks
it (:func:`repro.obs.chrome.validate_chrome_trace`,
:func:`repro.obs.manifest.validate_manifest`); the exit status is then
non-zero iff a check failed, which is how CI consumes this command.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.attribution import CycleAttribution
from repro.obs.chrome import ChromeTraceExporter, validate_chrome_trace
from repro.obs.manifest import build_manifest, validate_manifest, write_manifest
from repro.sim.config import MECHANISMS, MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads import BENCHMARKS, build_benchmark
from repro.workloads.suite import build_mix


def _build_programs(names: list[str]):
    for name in names:
        if name not in BENCHMARKS:
            raise SystemExit(
                f"repro-trace: unknown workload {name!r} "
                f"(choose from {sorted(BENCHMARKS)})"
            )
    if len(names) == 1:
        return build_benchmark(names[0])
    return build_mix(tuple(names))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Run one workload with tracing on and export a "
        "Chrome trace_event JSON (plus manifest and cycle attribution).",
    )
    parser.add_argument(
        "workload",
        nargs="+",
        help="benchmark name(s); several names run as an SMT mix",
    )
    parser.add_argument(
        "--mechanism",
        choices=MECHANISMS,
        default="multithreaded",
        help="exception mechanism to simulate (default: multithreaded)",
    )
    parser.add_argument(
        "--insts", type=int, default=5_000,
        help="measured user instructions per thread (default: 5000)",
    )
    parser.add_argument(
        "--warmup", type=int, default=1_000,
        help="warm-up user instructions per thread (default: 1000)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=10_000_000,
        help="simulation cycle budget (default: 10M)",
    )
    parser.add_argument(
        "--out", default=None,
        help="trace output path (default: <workload>-<mechanism>.trace.json)",
    )
    parser.add_argument(
        "--manifest", default=None,
        help="also write the run manifest to this path",
    )
    parser.add_argument(
        "--attribution", action="store_true",
        help="print the Table-3 cycle-attribution breakdown",
    )
    parser.add_argument(
        "--no-retires", action="store_true",
        help="omit per-instruction retire slices (smaller traces)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="schema-check the written files; non-zero exit on problems",
    )
    args = parser.parse_args(argv)

    sim = Simulator(
        _build_programs(args.workload),
        MachineConfig(mechanism=args.mechanism),
    )
    exporter = ChromeTraceExporter.attach(sim.core, retires=not args.no_retires)
    attribution = CycleAttribution.attach(sim.core)
    result = sim.run(
        user_insts=args.insts,
        warmup_insts=args.warmup,
        max_cycles=args.max_cycles,
    )
    table = attribution.finalize(sim.core.cycle)
    table.check_sum()

    manifest = build_manifest(
        result, sim.config, attribution=table, workload=tuple(args.workload)
    )
    out = args.out or f"{'-'.join(args.workload)}-{args.mechanism}.trace.json"
    exporter.write(out, manifest)
    written = [out]
    if args.manifest:
        write_manifest(args.manifest, manifest)
        written.append(args.manifest)

    print(
        f"{'+'.join(args.workload)} under {args.mechanism}: "
        f"{result.cycles} cycles, {result.committed_fills} fills, "
        f"ipc {result.ipc:.3f}"
    )
    for path in written:
        print(f"wrote {path}")
    if args.attribution:
        print()
        print(table.format(fills=result.committed_fills))

    if args.validate:
        problems: list[str] = []
        with open(out) as fh:
            doc = json.load(fh)
        problems += [f"{out}: {p}" for p in validate_chrome_trace(doc)]
        problems += [
            f"{out} (embedded manifest): {p}"
            for p in validate_manifest(doc.get("otherData", {}))
        ]
        if args.manifest:
            with open(args.manifest) as fh:
                problems += [
                    f"{args.manifest}: {p}"
                    for p in validate_manifest(json.load(fh))
                ]
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            return 1
        print(f"validated {len(written)} file(s): ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
