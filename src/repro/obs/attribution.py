"""Cycle accounting in the paper's Table-3 categories.

The paper's argument is a *where-do-the-cycles-go* argument: Table 3
decomposes the traditional trap penalty (~22.7 cycles/miss) into squash
and refetch waste, handler fetch/decode latency, and handler occupancy,
then shows which mechanism removes which component.  This module turns
the event stream into exactly that decomposition.

:class:`CycleAttribution` subscribes to the core's event bus and
classifies **every cycle into exactly one category**, so the per-category
counts always sum to the run's total cycle count:

``user``
    At least one user-mode instruction retired this cycle -- forward
    progress, whatever else was happening.
``handler_fetch``
    No user retirement, and a handler-thread episode was still in its
    fetch/decode phase (spawn until the first handler instruction
    issues).  The dominant multithreaded-mechanism cost; quick-start
    exists to shrink it.
``handler_exec``
    No user retirement, and an exception episode was executing (first
    handler issue until ``reti`` issues; hardware walks count here for
    their whole duration).
``squash_refetch``
    No user retirement and either a traditional trap was refilling the
    pipeline (its fetch/decode phase *is* refetch after the trap
    squash), a squash happened this cycle, or a thread was still
    refetching squashed work.  The dominant traditional-trap cost.
``splice_stall``
    No user retirement; every open episode had executed its ``reti``
    and was only waiting for the retirement splice.
``idle``
    Nothing happened at all (includes cycles skipped by the idle
    fast-forward, which emit no events by construction).

Classification uses end-of-cycle state and a fixed precedence
(``user`` > ``handler_fetch`` > trap-refill > ``handler_exec`` >
``splice_stall`` > ``squash_refetch`` > activity > ``idle``), so
overlapping episodes and multiprogrammed threads never double-count a
cycle.  Per-episode phase timings are recorded alongside the aggregate
table (:class:`EpisodeRecord`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import EventBus, ObsEvent

#: The classification buckets, in report order.
ATTRIBUTION_CATEGORIES = (
    "user",
    "handler_fetch",
    "handler_exec",
    "squash_refetch",
    "splice_stall",
    "idle",
)

#: Episode phases: spawned but no handler instruction issued yet; handler
#: executing; reti issued, waiting only for the retirement splice.
_FETCH, _EXEC, _DRAIN = "fetch", "exec", "drain"


@dataclass
class EpisodeRecord:
    """One exception's life with its phase boundaries."""

    exc_id: int
    exc_type: str
    #: How handling ran: ``thread`` (multithreaded/quick-start),
    #: ``trap`` (traditional, incl. reversions), ``walk`` (hardware).
    path: str
    #: How it ended: the clean paths echo ``path``; ``reclaimed`` /
    #: ``dropped`` / ``fault`` / ``superseded`` aborted; ``open`` means
    #: the run finished with the episode still in flight.
    end_path: str
    tid: int
    master_tid: int
    master_seq: int
    detect_cycle: int
    spawn_cycle: int
    first_issue_cycle: int
    reti_cycle: int
    end_cycle: int

    @property
    def latency(self) -> int:
        """Spawn to completion, in cycles."""
        return self.end_cycle - self.spawn_cycle

    @property
    def fetch_cycles(self) -> int:
        """Spawn until the first handler instruction issued."""
        stop = self.first_issue_cycle if self.first_issue_cycle >= 0 else self.end_cycle
        return max(0, stop - self.spawn_cycle)

    @property
    def exec_cycles(self) -> int:
        """First handler issue until ``reti`` issued (whole walk for
        the hardware mechanism)."""
        if self.path == "walk":
            return self.latency
        if self.first_issue_cycle < 0:
            return 0
        stop = self.reti_cycle if self.reti_cycle >= 0 else self.end_cycle
        return max(0, stop - self.first_issue_cycle)

    @property
    def drain_cycles(self) -> int:
        """``reti`` issued until the retirement splice completed."""
        if self.reti_cycle < 0:
            return 0
        return max(0, self.end_cycle - self.reti_cycle)


@dataclass
class AttributionTable:
    """Aggregate per-category cycle counts plus the episode log."""

    total_cycles: int
    cycles: dict[str, int]
    episodes: list[EpisodeRecord] = field(default_factory=list)

    def check_sum(self) -> None:
        """Raise if the categories do not cover the run exactly."""
        total = sum(self.cycles.values())
        if total != self.total_cycles:
            raise AssertionError(
                f"attribution covers {total} of {self.total_cycles} cycles"
            )

    @property
    def overhead_cycles(self) -> int:
        """Cycles in any non-``user``, non-``idle`` category."""
        return sum(
            v for k, v in self.cycles.items() if k not in ("user", "idle")
        )

    def per_miss(self, fills: int) -> dict[str, float]:
        """Category cycles normalised per committed TLB fill."""
        if fills <= 0:
            return {k: 0.0 for k in self.cycles}
        return {k: v / fills for k, v in self.cycles.items()}

    def as_dict(self) -> dict:
        """JSON-friendly view (manifests, exporters)."""
        return {
            "total_cycles": self.total_cycles,
            "cycles": dict(self.cycles),
            "episodes": len(self.episodes),
            "episode_latency_sum": sum(e.latency for e in self.episodes),
        }

    def format(self, fills: int | None = None) -> str:
        """Aligned text table (optionally with a per-miss column)."""
        width = max(len(k) for k in ATTRIBUTION_CATEGORIES)
        lines = []
        header = f"{'category':{width}s} {'cycles':>10s} {'share':>7s}"
        if fills:
            header += f" {'per-miss':>9s}"
        lines.append(header)
        lines.append("-" * len(header))
        total = self.total_cycles or 1
        for cat in ATTRIBUTION_CATEGORIES:
            v = self.cycles.get(cat, 0)
            line = f"{cat:{width}s} {v:10d} {100.0 * v / total:6.1f}%"
            if fills:
                line += f" {v / fills:9.2f}"
            lines.append(line)
        lines.append("-" * len(header))
        line = f"{'total':{width}s} {self.total_cycles:10d} {100.0:6.1f}%"
        if fills:
            line += f" {self.total_cycles / fills:9.2f}"
        lines.append(line)
        return "\n".join(lines)


class _Episode:
    """Mutable in-flight episode state (becomes an EpisodeRecord)."""

    __slots__ = (
        "exc_id", "exc_type", "path", "tid", "master_tid", "master_seq",
        "detect_cycle", "spawn_cycle", "first_issue_cycle", "reti_cycle",
        "phase",
    )

    def __init__(self, event: ObsEvent, detect_cycle: int) -> None:
        self.exc_id = event.exc_id
        self.exc_type = event.exc_type
        self.path = event.path
        self.tid = event.tid
        self.master_tid = event.master_tid
        self.master_seq = event.master_seq
        self.detect_cycle = detect_cycle
        self.spawn_cycle = event.cycle
        self.first_issue_cycle = -1
        self.reti_cycle = -1
        # A walk has no front end: the FSM is "executing" from cycle one.
        self.phase = _EXEC if event.path == "walk" else _FETCH

    def record(self, end_cycle: int, end_path: str) -> EpisodeRecord:
        return EpisodeRecord(
            exc_id=self.exc_id,
            exc_type=self.exc_type,
            path=self.path,
            end_path=end_path,
            tid=self.tid,
            master_tid=self.master_tid,
            master_seq=self.master_seq,
            detect_cycle=self.detect_cycle,
            spawn_cycle=self.spawn_cycle,
            first_issue_cycle=self.first_issue_cycle,
            reti_cycle=self.reti_cycle,
            end_cycle=end_cycle,
        )


class CycleAttribution:
    """Event-bus subscriber that buckets every cycle (see module doc).

    Feed it a whole run, then call :meth:`finalize` with the run's total
    cycle count::

        attribution = CycleAttribution.attach(sim.core)
        result = sim.run(...)
        table = attribution.finalize(sim.core.cycle)
        table.check_sum()          # categories cover the run exactly
        print(table.format(fills=result.committed_fills))
    """

    def __init__(self) -> None:
        self.episodes: list[EpisodeRecord] = []
        self._counts: dict[str, int] = {k: 0 for k in ATTRIBUTION_CATEGORIES}
        self._open: dict[int, _Episode] = {}  # exc_id -> episode
        #: (tid, seq) -> cycle of an ``exception`` event not yet matched
        #: to its ``spawn``.
        self._pending_detect: dict[tuple[int, int], int] = {}
        #: Threads refetching squashed user work (cleared by the thread's
        #: next user-mode retirement).
        self._refetching: set[int] = set()
        #: The cycle currently being accumulated, and its flags.
        self._cycle = -1
        self._user_retired = False
        self._user_squashed = False
        self._any_event = False
        #: Phases of episodes that closed during the current cycle (they
        #: still colour the cycle they ended in).
        self._closed_phases: list[tuple[str, str]] = []
        self._done_through = 0  # cycles [0, _done_through) are classified

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, core) -> "CycleAttribution":
        """Create, subscribe to ``core``'s bus (creating it), return."""
        from repro.obs.events import attach_bus

        self = cls()
        attach_bus(core).subscribe(self)
        return self

    # ------------------------------------------------------------------
    def on_event(self, event: ObsEvent) -> None:
        if event.cycle != self._cycle:
            self._advance_to(event.cycle)
        self._any_event = True
        kind = event.kind
        if kind == "retire":
            if not event.is_handler:
                self._user_retired = True
                self._refetching.discard(event.tid)
        elif kind == "issue":
            if event.is_handler:
                self._handler_issued(event)
        elif kind == "squash":
            if not event.is_handler:
                self._user_squashed = True
                self._refetching.add(event.tid)
        elif kind == "exception":
            self._pending_detect[(event.tid, event.seq)] = event.cycle
        elif kind == "spawn":
            self._on_spawn(event)
        elif kind == "splice":
            self._on_splice(event)

    # -- episode bookkeeping -------------------------------------------
    def _handler_issued(self, event: ObsEvent) -> None:
        for ep in self._open.values():
            if ep.tid != event.tid or ep.phase == _DRAIN or ep.path == "walk":
                continue
            if ep.phase == _FETCH:
                ep.phase = _EXEC
                ep.first_issue_cycle = event.cycle
            if event.op == "reti":
                ep.phase = _DRAIN
                ep.reti_cycle = event.cycle

    def _on_spawn(self, event: ObsEvent) -> None:
        if event.path == "trap":
            # The traditional engine keeps one live trap per thread; a
            # new trap on the same thread supersedes a stale one (e.g.
            # a wrong-path trap whose reti never retired).
            stale = [
                ep for ep in self._open.values()
                if ep.path == "trap" and ep.tid == event.tid
            ]
            for ep in stale:
                self._close(ep, event.cycle, "superseded")
        detect = self._pending_detect.pop(
            (event.master_tid, event.master_seq), event.cycle
        )
        self._open[event.exc_id] = _Episode(event, detect)

    def _on_splice(self, event: ObsEvent) -> None:
        ep = self._open.get(event.exc_id)
        if ep is not None:
            self._close(ep, event.cycle, event.path)

    def _close(self, ep: _Episode, cycle: int, end_path: str) -> None:
        del self._open[ep.exc_id]
        self._closed_phases.append((ep.path, ep.phase))
        self.episodes.append(ep.record(cycle, end_path))

    # -- per-cycle classification --------------------------------------
    def _advance_to(self, cycle: int) -> None:
        """Finalize the current cycle, then bulk-classify the quiet gap
        up to (but excluding) ``cycle``."""
        if self._cycle >= 0:
            self._counts[self._classify()] += 1
            self._done_through = self._cycle + 1
        gap = cycle - self._done_through
        if gap > 0:
            # No events in the gap means no state transitions either, so
            # one classification covers every cycle in it.
            self._counts[self._classify_quiet()] += gap
            self._done_through = cycle
        self._cycle = cycle
        self._user_retired = False
        self._user_squashed = False
        self._any_event = False
        self._closed_phases.clear()

    def _classify(self) -> str:
        if self._user_retired:
            return "user"
        phases = [(ep.path, ep.phase) for ep in self._open.values()]
        phases.extend(self._closed_phases)
        if phases:
            return self._episode_category(phases)
        if self._user_squashed or self._refetching:
            return "squash_refetch"
        if self._any_event:
            # Front-end / execute activity on the user program's behalf
            # with nothing retiring yet (pipeline fill): forward work.
            return "user"
        return "idle"

    def _classify_quiet(self) -> str:
        phases = [(ep.path, ep.phase) for ep in self._open.values()]
        if phases:
            return self._episode_category(phases)
        if self._refetching:
            return "squash_refetch"
        return "idle"

    @staticmethod
    def _episode_category(phases: list[tuple[str, str]]) -> str:
        """Category for a no-user-retirement cycle with open episodes.

        A handler *thread* still in its front end is the multithreaded
        mechanism's fetch/decode cost; a *trap* in its front end is the
        traditional mechanism refilling the pipeline it just squashed,
        which the paper accounts as squash/refetch waste.
        """
        if any(path == "thread" and phase == _FETCH for path, phase in phases):
            return "handler_fetch"
        if any(path == "trap" and phase == _FETCH for path, phase in phases):
            return "squash_refetch"
        if any(phase == _EXEC for _, phase in phases):
            return "handler_exec"
        return "splice_stall"

    # ------------------------------------------------------------------
    def finalize(self, total_cycles: int) -> AttributionTable:
        """Classify through ``total_cycles`` and return the table.

        Episodes still open (the run ended mid-exception) are closed at
        ``total_cycles`` with ``end_path="open"``.
        """
        self._advance_to(total_cycles)
        for ep in list(self._open.values()):
            self._close(ep, total_cycles, "open")
        self._closed_phases.clear()
        return AttributionTable(
            total_cycles=total_cycles,
            cycles=dict(self._counts),
            episodes=list(self.episodes),
        )
