"""First-class observability: event bus, attribution, trace export.

The pipeline core and the exception mechanisms emit typed
:class:`~repro.obs.events.ObsEvent` records through an optional
:class:`~repro.obs.events.EventBus` (``SMTCore.listeners``).  The bus is
``None`` by default and every emission site is guarded by a single
``is not None`` check, so a machine with no listeners runs bit-identical
to one built before this package existed (the same pattern as the
runtime sanitizer, docs/ANALYSIS.md).

Subscribers shipped here:

* :class:`~repro.obs.attribution.CycleAttribution` -- classifies every
  cycle into the paper's Table-3 penalty categories (useful user work,
  handler fetch/decode, handler execute, squash/refetch waste, splice
  stall, idle) and records per-episode phase timings.
* :class:`~repro.obs.chrome.ChromeTraceExporter` -- Chrome
  ``trace_event`` JSON, one track per hardware thread, handler episodes
  as colored spans (load in ``chrome://tracing`` or Perfetto).
* :class:`~repro.sim.trace.PipelineTracer` -- the legacy typed-event
  recorder, now a plain subscriber.

``python -m repro.obs`` (or the ``repro-trace`` script) runs one
workload with tracing on and writes the trace plus a run manifest.
See docs/OBSERVABILITY.md.
"""

from repro.obs.attribution import (
    ATTRIBUTION_CATEGORIES,
    AttributionTable,
    CycleAttribution,
    EpisodeRecord,
)
from repro.obs.chrome import ChromeTraceExporter, validate_chrome_trace
from repro.obs.events import (
    EVENT_KINDS,
    EventBus,
    ObsEvent,
    attach_bus,
)
from repro.obs.manifest import (
    build_manifest,
    config_hash,
    validate_manifest,
    write_manifest,
)

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "AttributionTable",
    "ChromeTraceExporter",
    "CycleAttribution",
    "EpisodeRecord",
    "EVENT_KINDS",
    "EventBus",
    "ObsEvent",
    "attach_bus",
    "build_manifest",
    "config_hash",
    "validate_chrome_trace",
    "validate_manifest",
    "write_manifest",
]
