"""``python -m repro.obs`` — see :mod:`repro.obs.cli`."""

from repro.obs.cli import main

raise SystemExit(main())
