"""Per-run manifests: what ran, under what, and what it counted.

A manifest is a small JSON document that makes a finished simulation
auditable without re-running it: the exact machine configuration (and a
short hash of it for quick comparison), the engine source fingerprint,
every counter the run produced, and -- when cycle attribution was on --
the Table-3 category breakdown.

Manifests are written next to cached results by
:class:`repro.sim.parallel.ResultCache`, embedded in Chrome traces by
``python -m repro.obs``, and schema-checked in CI by
:func:`validate_manifest`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.attribution import AttributionTable
    from repro.sim.config import MachineConfig
    from repro.sim.simulator import SimResult

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1

#: Top-level keys every manifest must carry.
_REQUIRED_KEYS = (
    "schema",
    "kind",
    "engine",
    "engine_backend",
    "config_hash",
    "config",
    "mechanism",
    "cycles",
    "counters",
    "checkpoint",
)


def config_hash(config: "MachineConfig") -> str:
    """Short stable digest of a machine configuration."""
    token = repr(sorted(dataclasses.asdict(config).items()))
    return hashlib.sha256(token.encode()).hexdigest()[:16]


def build_manifest(
    result: "SimResult",
    config: "MachineConfig",
    attribution: "AttributionTable | None" = None,
    workload: str | tuple[str, ...] | None = None,
    checkpoint: dict | None = None,
    cache_stats: dict | None = None,
    node: dict | None = None,
) -> dict:
    """Assemble the manifest for one finished run."""
    # Local import: repro.sim.parallel imports the simulator stack, which
    # imports this package via the pipeline core.
    from repro.engine import resolve_engine
    from repro.sim.parallel import engine_fingerprint

    counters = {
        "sim": result.stats.as_dict(),
        "mech": dataclasses.asdict(result.mech) if result.mech else None,
        "tlb": dataclasses.asdict(result.tlb),
        "branch": dataclasses.asdict(result.branch),
        "l1d": dataclasses.asdict(result.l1d),
        "l2": dataclasses.asdict(result.l2),
    }
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kind": "repro-run-manifest",
        "engine": engine_fingerprint(),
        # Which backend's cycle kernel produced the run (bit-identical
        # by contract, recorded so every result stays traceable).
        "engine_backend": resolve_engine(),
        "config_hash": config_hash(config),
        "config": dataclasses.asdict(config),
        "mechanism": result.mechanism,
        "workload": list(workload) if isinstance(workload, tuple) else workload,
        "cycles": result.cycles,
        "retired_user": result.retired_user,
        "committed_fills": result.committed_fills,
        "ipc": result.ipc,
        "counters": counters,
        # Checkpoint lineage: the warm/exact snapshot this run started
        # from ({"hash", "kind", "warmup_insts"}), or null for cold runs.
        "checkpoint": (
            checkpoint
            if checkpoint is not None
            else getattr(result, "checkpoint", None)
        ),
    }
    if attribution is not None:
        manifest["attribution"] = {
            **attribution.as_dict(),
            "per_miss": attribution.per_miss(result.committed_fills),
        }
    if cache_stats is not None:
        # Result-store counters at publish time (hits/misses/evictions/
        # in-flight dedupes), written by the content-addressed store the
        # sweep service runs on (docs/SERVICE.md).
        manifest["cache"] = dict(cache_stats)
    if node is not None:
        # Which cluster node published this result, and its routing
        # counters at publish time (docs/SERVICE.md "Cluster mode");
        # absent on single-host runs.
        manifest["node"] = dict(node)
    return manifest


def validate_manifest(manifest: dict) -> list[str]:
    """Schema-check a manifest; returns a list of problems."""
    errors: list[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not an object"]
    for key in _REQUIRED_KEYS:
        if key not in manifest:
            errors.append(f"missing key {key!r}")
    if manifest.get("kind") != "repro-run-manifest":
        errors.append(f"bad kind {manifest.get('kind')!r}")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"unknown schema {manifest.get('schema')!r}")
    counters = manifest.get("counters")
    if not isinstance(counters, dict) or "sim" not in counters:
        errors.append("counters.sim missing")
    elif not isinstance(counters["sim"], dict):
        errors.append("counters.sim is not an object")
    cycles = manifest.get("cycles")
    if not isinstance(cycles, int) or cycles < 0:
        errors.append(f"bad cycles {cycles!r}")
    lineage = manifest.get("checkpoint")
    if lineage is not None:
        if not isinstance(lineage, dict) or not isinstance(
            lineage.get("hash"), str
        ):
            errors.append("checkpoint lineage must be null or carry a hash")
    cache_stats = manifest.get("cache")
    if cache_stats is not None:
        if not isinstance(cache_stats, dict):
            errors.append("cache stats must be an object")
        else:
            for key, value in cache_stats.items():
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"cache stat {key!r} must be a non-negative "
                        f"integer, got {value!r}"
                    )
    node = manifest.get("node")
    if node is not None:
        if not isinstance(node, dict) or not isinstance(
            node.get("node_id"), str
        ):
            errors.append("node block must carry a string node_id")
        else:
            for key, value in node.items():
                if key == "node_id":
                    continue
                if not isinstance(value, int) or value < 0:
                    errors.append(
                        f"node stat {key!r} must be a non-negative "
                        f"integer, got {value!r}"
                    )
    attribution = manifest.get("attribution")
    if attribution is not None:
        table = attribution.get("cycles")
        if not isinstance(table, dict):
            errors.append("attribution.cycles is not an object")
        elif sum(table.values()) != attribution.get("total_cycles"):
            errors.append("attribution categories do not sum to total_cycles")
    return errors


def write_manifest(path_or_file: str | IO[str], manifest: dict) -> None:
    """Serialize a manifest as JSON to a path or open file."""
    if hasattr(path_or_file, "write"):
        json.dump(manifest, path_or_file, indent=2)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(manifest, fh, indent=2)
            fh.write("\n")
