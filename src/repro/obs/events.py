"""Typed pipeline events and the core's optional event bus.

Event kinds and their populated fields (every event carries ``kind``,
``cycle``, and ``tid``; unused fields hold their defaults):

=============== ====================================================
``fetch``       ``seq``, ``pc``, ``op``, ``is_handler``
``issue``       ``seq``, ``pc``, ``op``, ``is_handler``
``retire``      ``seq``, ``pc``, ``op``, ``is_handler``
``squash``      ``seq``, ``pc``, ``op``, ``is_handler``
``exception``   ``seq``, ``pc``, ``exc_type`` -- a user instruction
                needed help at issue time (DTLB miss / emulation),
                emitted *before* the mechanism reacts
``spawn``       ``exc_id``, ``exc_type``, ``master_tid``,
                ``master_seq``, ``path`` -- handling began; ``tid`` is
                the thread running the handler (the master itself for a
                traditional trap) and ``path`` says how
                (``thread`` / ``trap`` / ``walk``)
``splice``      same fields as ``spawn`` -- handling ended; ``path``
                says how (``thread`` / ``trap`` / ``walk`` retired
                cleanly, ``reclaimed`` / ``dropped`` / ``fault``
                aborted)
``fault``       ``seq``, ``pc``, ``exc_type`` (the injected fault
                kind, e.g. ``force_miss``), ``path`` (free-form
                detail) -- the fault injector perturbed the machine
                (docs/ROBUSTNESS.md); emitted at the injection site so
                every perturbation is attributable
=============== ====================================================

Within one cycle events arrive in stage order (retire before issue
before fetch, matching :meth:`SMTCore.step`); across cycles the stream
is monotonically non-decreasing in ``cycle``.  Quiet cycles skipped by
the idle fast-forward emit nothing -- stream consumers must treat cycle
gaps as machine-wide inactivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore

#: Every event kind the core and the mechanisms emit.
EVENT_KINDS = (
    "fetch",
    "issue",
    "retire",
    "squash",
    "exception",
    "spawn",
    "splice",
    "fault",
)


@dataclass(slots=True)
class ObsEvent:
    """One observed machine event (see the module table for fields)."""

    kind: str
    cycle: int
    tid: int
    seq: int = -1
    pc: int = -1
    op: str = ""
    is_handler: bool = False
    exc_type: str = ""
    exc_id: int = -1
    master_tid: int = -1
    master_seq: int = -1
    path: str = ""


class Subscriber(Protocol):
    """Anything with an ``on_event`` method may join the bus."""

    def on_event(self, event: ObsEvent) -> None: ...  # pragma: no cover


class EventBus:
    """Fan-out of :class:`ObsEvent` records to subscribers.

    The bus itself never mutates machine state; subscription order is
    the notification order, and unsubscription is valid in any order
    (there is nothing to restore -- unlike the retired monkey-patch
    tracer, detaching one subscriber cannot resurrect another).
    """

    __slots__ = ("_subs",)

    def __init__(self) -> None:
        self._subs: list[Subscriber] = []

    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Add ``subscriber`` (idempotent); returns it for chaining."""
        if subscriber not in self._subs:
            self._subs.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove ``subscriber`` if present (any order is fine)."""
        try:
            self._subs.remove(subscriber)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._subs)

    # ------------------------------------------------------------------
    def emit(self, event: ObsEvent) -> None:
        for sub in self._subs:
            sub.on_event(event)

    # Convenience constructors so emission sites stay one line each.
    def fetch(self, cycle: int, tid: int, seq: int, pc: int, op: str,
              is_handler: bool) -> None:
        self.emit(ObsEvent("fetch", cycle, tid, seq, pc, op, is_handler))

    def issue(self, cycle: int, tid: int, seq: int, pc: int, op: str,
              is_handler: bool) -> None:
        self.emit(ObsEvent("issue", cycle, tid, seq, pc, op, is_handler))

    def retire(self, cycle: int, tid: int, seq: int, pc: int, op: str,
               is_handler: bool) -> None:
        self.emit(ObsEvent("retire", cycle, tid, seq, pc, op, is_handler))

    def squash(self, cycle: int, tid: int, seq: int, pc: int, op: str,
               is_handler: bool) -> None:
        self.emit(ObsEvent("squash", cycle, tid, seq, pc, op, is_handler))

    def exception(self, cycle: int, tid: int, seq: int, pc: int,
                  exc_type: str) -> None:
        self.emit(
            ObsEvent("exception", cycle, tid, seq, pc, exc_type=exc_type)
        )

    def spawn(self, cycle: int, tid: int, exc_id: int, exc_type: str,
              master_tid: int, master_seq: int, path: str) -> None:
        self.emit(
            ObsEvent(
                "spawn", cycle, tid, exc_id=exc_id, exc_type=exc_type,
                master_tid=master_tid, master_seq=master_seq, path=path,
            )
        )

    def splice(self, cycle: int, tid: int, exc_id: int, exc_type: str,
               master_tid: int, master_seq: int, path: str) -> None:
        self.emit(
            ObsEvent(
                "splice", cycle, tid, exc_id=exc_id, exc_type=exc_type,
                master_tid=master_tid, master_seq=master_seq, path=path,
            )
        )

    def fault(self, cycle: int, tid: int, seq: int, pc: int, fault_kind: str,
              detail: str) -> None:
        self.emit(
            ObsEvent(
                "fault", cycle, tid, seq, pc, exc_type=fault_kind,
                path=detail,
            )
        )


def attach_bus(core: "SMTCore") -> EventBus:
    """The core's event bus, creating (and installing) one if absent."""
    if core.listeners is None:
        core.listeners = EventBus()
    return core.listeners
