"""Chrome ``trace_event`` export: load a run in ``chrome://tracing``.

The exporter is an event-bus subscriber that renders the run in the
Trace Event Format (the JSON dialect understood by ``chrome://tracing``
and Perfetto): one track per hardware thread context, every retired
instruction as a duration slice, handler episodes as colored spans on
the handler's track, and exception detections / squashes as instant
events.  One simulated cycle maps to one microsecond of trace time.

Typical use::

    exporter = ChromeTraceExporter.attach(sim.core)
    sim.run(...)
    exporter.write("run.trace.json")

The output's top level is ``{"traceEvents": [...], ...}``;
:func:`validate_chrome_trace` checks the invariants the tests and the
CI schema job rely on.
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.events import ObsEvent

#: chrome://tracing reserved color names per episode path.
_EPISODE_COLORS = {
    "thread": "thread_state_running",
    "trap": "terrible",
    "walk": "thread_state_iowait",
}

#: Fields every emitted trace event carries.
_REQUIRED_EVENT_KEYS = ("name", "ph", "pid", "tid")


class ChromeTraceExporter:
    """Collects bus events and renders Trace Event Format JSON."""

    PID = 1  # one simulated machine == one "process"

    def __init__(self, retires: bool = True) -> None:
        #: Include per-retired-instruction slices (set False for long
        #: runs where only the episode spans matter).
        self.include_retires = retires
        self._retires: list[ObsEvent] = []
        self._instants: list[ObsEvent] = []  # exception detects, squashes
        self._spawns: dict[int, ObsEvent] = {}
        self._episodes: list[tuple[ObsEvent, ObsEvent]] = []  # (spawn, splice)
        self._tids: set[int] = set()

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, core, retires: bool = True) -> "ChromeTraceExporter":
        """Create, subscribe to ``core``'s bus (creating it), return."""
        from repro.obs.events import attach_bus

        self = cls(retires=retires)
        attach_bus(core).subscribe(self)
        return self

    def on_event(self, event: ObsEvent) -> None:
        kind = event.kind
        self._tids.add(event.tid)
        if kind == "retire":
            if self.include_retires:
                self._retires.append(event)
        elif kind in ("exception", "squash"):
            self._instants.append(event)
        elif kind == "spawn":
            self._spawns[event.exc_id] = event
        elif kind == "splice":
            spawn = self._spawns.pop(event.exc_id, None)
            if spawn is not None:
                self._episodes.append((spawn, event))

    # ------------------------------------------------------------------
    def trace_events(self) -> list[dict]:
        """The ``traceEvents`` array (metadata first, then slices)."""
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.PID,
                "tid": 0,
                "args": {"name": "repro SMT core"},
            }
        ]
        for tid in sorted(self._tids):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.PID,
                    "tid": tid,
                    "args": {"name": f"hardware context T{tid}"},
                }
            )
        for spawn, splice in self._episodes:
            events.append(
                {
                    "name": f"{spawn.exc_type} handler [{spawn.path}]",
                    "cat": "episode",
                    "ph": "X",
                    "ts": spawn.cycle,
                    "dur": max(1, splice.cycle - spawn.cycle),
                    "pid": self.PID,
                    "tid": spawn.tid,
                    "cname": _EPISODE_COLORS.get(spawn.path, "generic_work"),
                    "args": {
                        "exc_id": spawn.exc_id,
                        "master_tid": spawn.master_tid,
                        "master_seq": spawn.master_seq,
                        "end": splice.path,
                    },
                }
            )
        for e in self._retires:
            record = {
                "name": e.op,
                "cat": "retire",
                "ph": "X",
                "ts": e.cycle,
                "dur": 1,
                "pid": self.PID,
                "tid": e.tid,
                "args": {"seq": e.seq, "pc": e.pc},
            }
            if e.is_handler:
                record["cname"] = "yellow"
            events.append(record)
        for e in self._instants:
            events.append(
                {
                    "name": e.exc_type if e.kind == "exception" else f"squash {e.op}",
                    "cat": e.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": e.cycle,
                    "pid": self.PID,
                    "tid": e.tid,
                    "args": {"seq": e.seq, "pc": e.pc},
                }
            )
        return events

    def export(self, manifest: dict | None = None) -> dict:
        """The full trace document (``otherData`` carries the manifest)."""
        doc = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "metadata": {"unit": "1 cycle == 1 us", "format": "trace_event"},
        }
        if manifest is not None:
            doc["otherData"] = manifest
        return doc

    def write(self, path_or_file: str | IO[str], manifest: dict | None = None) -> None:
        """Serialize :meth:`export` as JSON to a path or open file."""
        doc = self.export(manifest)
        if hasattr(path_or_file, "write"):
            json.dump(doc, path_or_file, indent=1)
        else:
            with open(path_or_file, "w") as fh:
                json.dump(doc, fh, indent=1)
                fh.write("\n")


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema-check a trace document; returns a list of problems.

    Checks the Trace Event Format essentials (the keys ``about:tracing``
    actually requires) plus this exporter's invariants: integer
    non-negative timestamps, positive durations on ``X`` slices, and
    metadata naming for every referenced thread track.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    named_tids: set[int] = set()
    used_tids: set[int] = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                named_tids.add(event.get("tid"))
            continue
        used_tids.add(event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 1:
                errors.append(f"{where}: bad dur {dur!r}")
        elif ph == "i":
            if event.get("s") not in ("g", "p", "t"):
                errors.append(f"{where}: instant scope {event.get('s')!r}")
        else:
            errors.append(f"{where}: unexpected phase {ph!r}")
    for tid in sorted(used_tids - named_tids):
        errors.append(f"thread {tid} has events but no thread_name metadata")
    return errors
