"""The multithreaded exception mechanism -- the paper's contribution.

On a DTLB miss the faulting instruction *stays in the window*, marked
not-ready; an idle SMT context is allocated and begins fetching the
handler with fetch priority.  The excepting instruction records the
handler thread (and the thread records its master + the excepting
sequence number -- the paper's Figure 4 state), producing the retirement
splice: the handler retires in its entirety after all pre-exception
instructions and before the excepting one.

Implemented behaviours from Section 4 of the paper:

* window **reservation** of (perfectly predicted) handler-length slots at
  spawn, plus the deadlock-avoidance tail squash in the core;
* **secondary-miss buffering**: further misses to a page whose fill is in
  flight wait on the same instance;
* **re-linking**: a *older* excepting instruction to the same page
  observed out of order steals the handler (the retirement splice moves
  to the older instruction);
* **reversion to the traditional mechanism** when no idle context is
  available, and on ``hardexc`` (page fault discovered mid-handler): the
  handler thread is squashed and the whole exception re-raised
  traditionally;
* **reclaim on squash**: if the excepting instruction dies (branch
  misprediction), the exception thread resets to idle and speculative
  fills roll back;
* a **page-table write check**: a committed store that overwrites a PTE
  being read by an in-flight handler squashes and respawns that handler
  (the memory-ordering recovery of Section 4.2).
"""

from __future__ import annotations

from repro.exceptions.base import ExceptionInstance, ExceptionMechanism
from repro.exceptions.predictors import SpawnPredictor
from repro.exceptions.traditional import TraditionalMechanism
from repro.isa.instructions import Opcode
from repro.isa.registers import PrivReg
from repro.memory.address import vpn_of
from repro.memory.page_table import pte_pfn
from repro.pipeline.thread import ThreadContext, ThreadState
from repro.pipeline.uop import Uop, UopState

_FAR_FUTURE = 1 << 60


class MultithreadedMechanism(ExceptionMechanism):
    """Handler threads with spliced retirement."""

    name = "multithreaded"

    def __init__(self) -> None:
        super().__init__()
        self.traditional = TraditionalMechanism()
        #: vpn -> live (unfilled or unretired) exception instance.
        self._by_vpn: dict[int, ExceptionInstance] = {}
        #: vpn -> live instruction-TLB miss instance (master-less: the
        #: faulting fetch produced no uop, so the "master" is a stalled
        #: thread front end rather than a window entry).
        self._itlb_pending: dict[int, ExceptionInstance] = {}
        #: vpn -> tids whose fetch is stalled on that ITLB fill.
        self._itlb_waiters: dict[int, list[int]] = {}
        #: Section 4.3: which exception types deserve a handler thread.
        self.spawn_predictor = SpawnPredictor()
        self._suppressed: dict[str, int] = {}
        #: While suppressed, probe with a real spawn every Nth exception
        #: so the predictor can re-learn (clustered faults end).
        self.spawn_probe_interval = 8

    def attach(self, core) -> None:
        """Bind to the core, sharing stats with the fallback engine."""
        super().attach(core)
        self.traditional.attach(core)
        # The fallback engine reports into the same counters.
        self.traditional.stats = self.stats

    # ------------------------------------------------------------------
    def _spawning_worthwhile(self, exc_type: str) -> bool:
        if not self.core.config.use_spawn_predictor:
            return True
        if self.spawn_predictor.should_spawn(exc_type):
            self._suppressed.pop(exc_type, None)
            return True
        count = self._suppressed.get(exc_type, 0) + 1
        self._suppressed[exc_type] = count
        # Periodic probe: without it the predictor could never observe a
        # clean completion and would suppress the type forever.
        return count % self.spawn_probe_interval == 0

    def on_dtlb_miss(self, uop: Uop, va: int, vpn: int, now: int) -> None:
        """Spawn a handler thread (or merge/revert per Section 4.5)."""
        self.stats.misses_seen += 1
        instance = self._by_vpn.get(vpn)
        if instance is not None and not instance.squashed and not instance.filled:
            self._merge_secondary(instance, uop, now)
            return
        if not self._spawning_worthwhile("dtlb_miss"):
            self.traditional.on_dtlb_miss(uop, va, vpn, now)
            return
        thread = self.core.find_idle_thread()
        if thread is None:
            # Section 4.5: with no idle context, fall back to trapping.
            self.stats.reverted_no_thread += 1
            self.traditional.on_dtlb_miss(uop, va, vpn, now)
            return
        self._spawn(thread, uop, now=now, va=va, vpn=vpn)

    def _merge_secondary(self, instance: ExceptionInstance, uop: Uop, now: int) -> None:
        """Buffer a second miss to a page whose fill is already in flight."""
        self.stats.secondary_merges += 1
        instance.waiters.append(uop)
        uop.waiting_fill = instance.vpn
        master = instance.master_uop
        if master is not None and uop.seq < master.seq:
            # Re-linking (Section 4.5): the handler must retire before the
            # *oldest* excepting instruction.
            self.stats.relinks += 1
            master.linked_handler = None
            master.exc_instance = None
            instance.waiters = [w for w in instance.waiters if w is not uop]
            instance.waiters.append(master)
            instance.master_uop = uop
            uop.exc_instance = instance
            if instance.thread is not None:
                uop.linked_handler = instance.thread
                instance.thread.master_uop = uop
                instance.thread.master_tid = uop.thread_id

    def on_emulation(self, uop: Uop, src_value: int, now: int) -> None:
        """Section 6 generalized mechanism: emulate in a handler thread.

        The cause string is the excepting mnemonic (emul/brev/swint), so
        each software-serviced opcode gets its own predictor entry,
        handler image, and per-cause attribution.
        """
        cause = uop.inst.op.value
        if not self._spawning_worthwhile(cause):
            self.traditional.on_emulation(uop, src_value, now)
            return
        thread = self.core.find_idle_thread()
        if thread is None:
            self.stats.reverted_no_thread += 1
            self.traditional.on_emulation(uop, src_value, now)
            return
        instance = ExceptionInstance(
            vpn=-1,
            va=0,
            master_uop=uop,
            thread=thread,
            exc_type=cause,
            src_value=src_value,
        )
        self._spawn(thread, uop, instance, now)

    def on_unaligned(self, uop: Uop, addr: int, now: int) -> None:
        """Unaligned-access fixup in a handler thread: the handler loads
        the aligned-down word and completes the master via ``mtdst``."""
        if not self._spawning_worthwhile("unaligned"):
            self.traditional.on_unaligned(uop, addr, now)
            return
        thread = self.core.find_idle_thread()
        if thread is None:
            self.stats.reverted_no_thread += 1
            self.traditional.on_unaligned(uop, addr, now)
            return
        instance = ExceptionInstance(
            vpn=-1,
            va=addr,
            master_uop=uop,
            thread=thread,
            exc_type="unaligned",
        )
        self._spawn(thread, uop, instance, now)

    def on_itlb_miss(self, thread: ThreadContext, pc: int, now: int) -> None:
        """Instruction-TLB miss: the faulting *fetch* produced no uop, so
        the handler thread runs master-less and the faulting thread's
        front end simply stalls until the fill lands (or the handler is
        reclaimed, at which point the refetch re-raises the miss)."""
        self.stats.misses_seen += 1
        va = pc * 4
        vpn = vpn_of(va)
        instance = self._itlb_pending.get(vpn)
        if instance is not None and not instance.squashed and not instance.filled:
            # Secondary fetch miss to a page whose fill is in flight:
            # stall this front end on the same instance.
            self.stats.secondary_merges += 1
            tids = self._itlb_waiters.setdefault(vpn, [])
            if thread.tid not in tids:
                tids.append(thread.tid)
            thread.fetch_stall_until = _FAR_FUTURE
            return
        if not self._spawning_worthwhile("itlb_miss"):
            self.traditional.on_itlb_miss(thread, pc, now)
            return
        handler = self.core.find_idle_thread()
        if handler is None:
            self.stats.reverted_no_thread += 1
            self.traditional.on_itlb_miss(thread, pc, now)
            return
        self._spawn_itlb(handler, thread, va, vpn, now)

    def _spawn_itlb(
        self,
        thread: ThreadContext,
        master: ThreadContext,
        va: int,
        vpn: int,
        now: int,
    ) -> None:
        """Allocate ``thread`` as a master-less ITLB handler context."""
        self.stats.spawns += 1
        core = self.core
        instance = ExceptionInstance(
            vpn=vpn, va=va, master_uop=None, thread=thread, exc_type="itlb_miss"
        )
        instance.spawn_cycle = now
        self._itlb_pending[vpn] = instance
        self._itlb_waiters[vpn] = [master.tid]
        self._cause_count(core.stats.cause_taken, "itlb_miss")
        self._emit_spawn(
            instance, thread.tid, "thread", now,
            master_tid=master.tid, master_seq=-1,
        )

        thread.state = ThreadState.EXCEPTION
        thread.program = master.program
        thread.master_tid = master.tid
        thread.master_uop = None
        thread.exc_instance = instance
        thread.fetch_priv = True
        thread.fetch_done = False
        thread.priv_regs[PrivReg.VA] = va
        thread.priv_regs[PrivReg.EXC_SRC] = 0
        thread.priv_regs[PrivReg.PTBR] = master.priv_regs[PrivReg.PTBR]

        if not core.config.limits.no_window_overhead:
            length = core.handler_lengths.get("itlb_miss", core.handler_length)
            core.window.reserve(instance.id, length)

        master.fetch_stall_until = _FAR_FUTURE

        if core.config.limits.instant_fetch:
            self._materialize_instantly(thread, now)
        else:
            self._start_frontend(thread, now)

    def _wake_itlb_masters(self, vpn: int, now: int) -> None:
        """Release every front end stalled on this ITLB fill."""
        for tid in self._itlb_waiters.pop(vpn, ()):
            waiter = self.core.threads[tid]
            if waiter.fetch_stall_until >= _FAR_FUTURE:
                waiter.fetch_stall_until = now + 1

    def _spawn(
        self,
        thread: ThreadContext,
        uop: Uop,
        instance: ExceptionInstance | None = None,
        now: int = 0,
        va: int = 0,
        vpn: int = -1,
    ) -> None:
        """Allocate ``thread`` as the exception context for ``uop``."""
        self.stats.spawns += 1
        core = self.core
        master = core.threads[uop.thread_id]
        if instance is None:
            instance = ExceptionInstance(vpn=vpn, va=va, master_uop=uop, thread=thread)
        instance.spawn_cycle = now
        if instance.exc_type == "dtlb_miss":
            self._by_vpn[instance.vpn] = instance
        self._cause_count(core.stats.cause_taken, instance.exc_type)
        self._emit_spawn(instance, thread.tid, "thread", now)

        uop.exc_instance = instance
        uop.linked_handler = thread
        # A sentinel "waiting" mark: dtlb misses wait on their vpn,
        # emulations wait on the handler's mtdst.
        uop.waiting_fill = instance.vpn

        thread.state = ThreadState.EXCEPTION
        thread.program = master.program
        thread.master_tid = master.tid
        thread.master_uop = uop
        thread.exc_instance = instance
        thread.fetch_priv = True
        thread.fetch_done = False
        thread.priv_regs[PrivReg.VA] = instance.va
        thread.priv_regs[PrivReg.EXC_SRC] = instance.src_value
        thread.priv_regs[PrivReg.PTBR] = master.priv_regs[PrivReg.PTBR]

        if not core.config.limits.no_window_overhead:
            length = core.handler_lengths.get(
                instance.exc_type, core.handler_length
            )
            core.window.reserve(instance.id, length)

        if core.config.limits.instant_fetch:
            self._materialize_instantly(thread, now)
        else:
            self._start_frontend(thread, now)

    def _handler_entry(self, thread: ThreadContext) -> int:
        exc_type = (
            thread.exc_instance.exc_type if thread.exc_instance else "dtlb_miss"
        )
        return self.core.pal_entries[exc_type]

    def _start_frontend(self, thread: ThreadContext, now: int) -> None:
        """Point the exception thread's fetch engine at the handler.

        Overridden by the quick-start mechanism, which may already hold a
        prefetched handler image in the thread's fetch buffer.
        """
        thread.pc = self._handler_entry(thread)
        thread.fetch_stall_until = now + 1

    def _materialize_instantly(self, thread: ThreadContext, now: int) -> None:
        """Table 3 limit study: handler appears decoded in the window."""
        core = self.core
        bus = core.listeners
        exc_id = thread.exc_instance.id if thread.exc_instance else None
        pc = self._handler_entry(thread)
        while True:
            inst = thread.program.fetch(pc)
            uop = Uop(core.alloc_seq(), thread.tid, pc, inst)
            uop.fetch_cycle = now
            uop.avail_cycle = now
            uop.is_handler = True
            if bus is not None:
                bus.fetch(now, thread.tid, uop.seq, pc, inst.op.value, True)
            if core.config.limits.no_window_overhead:
                uop.free_slot = True
            if inst.is_branch:
                pred = core.bpu.predict(pc, inst)
                uop.checkpoint = pred.checkpoint
                uop.pred_taken = pred.taken
                uop.pred_target = pred.target
            thread.rob.append(uop)
            core._rename(thread, uop)
            core.window.insert(uop, exc_id)
            uop.insert_cycle = now
            uop.min_sched_cycle = now + 1
            uop.state = UopState.WINDOW
            core._schedule_uop(uop)
            if inst.op is Opcode.RETI:
                break
            pc += 1
        thread.fetch_done = True
        thread.fetch_stall_until = 1 << 60

    # ------------------------------------------------------------------
    def on_tlbwr(self, uop: Uop, va: int, pte: int, now: int) -> None:
        """Speculative fill: wake the master and buffered waiters."""
        thread = self.core.threads[uop.thread_id]
        if not thread.is_exception_thread:
            self.traditional.on_tlbwr(uop, va, pte, now)
            return
        instance = thread.exc_instance
        if instance is None or instance.squashed:
            return
        uop.exc_instance = instance
        if uop.inst.op is Opcode.ITLBWR:
            self.core.itlb.fill(
                vpn_of(va), pte_pfn(pte), speculative=True, producer=instance.id
            )
            instance.filled = True
            instance.fill_cycle = now
            self._wake_itlb_masters(instance.vpn, now)
            # New fetch misses to this page must spawn fresh handling.
            if self._itlb_pending.get(instance.vpn) is instance:
                del self._itlb_pending[instance.vpn]
            return
        self.core.dtlb.fill(
            vpn_of(va), pte_pfn(pte), speculative=True, producer=instance.id
        )
        instance.filled = True
        instance.fill_cycle = now
        self._wake_waiters(instance)
        # New misses to this page must spawn fresh handling.
        if self._by_vpn.get(instance.vpn) is instance:
            del self._by_vpn[instance.vpn]

    def _wake_waiters(self, instance: ExceptionInstance) -> None:
        core = self.core
        for waiter in [instance.master_uop, *instance.waiters]:
            if waiter is not None and waiter.state != UopState.SQUASHED:
                waiter.waiting_fill = None
                core.wake_uop(waiter)

    def on_mtdst(self, uop: Uop, value: int, now: int) -> None:
        """Section 6: write straight into the excepting instruction's
        destination; it completes as a nop and its consumers wake."""
        thread = self.core.threads[uop.thread_id]
        if not thread.is_exception_thread:
            return  # traditional: handled via the dynamic rename dest
        instance = thread.exc_instance
        if instance is None or instance.squashed:
            return
        master = instance.master_uop
        if master is None or master.state == UopState.SQUASHED:
            return
        master.value = value & ((1 << 64) - 1)
        master.issued = True
        master.issue_cycle = now
        master.finish_cycle = now + 1
        master.waiting_fill = None
        self.core.producer_issued(master)
        instance.filled = True
        instance.fill_cycle = now

    def on_hardexc(self, uop: Uop, now: int) -> None:
        """Page fault mid-handler: squash the thread, trap traditionally."""
        thread = self.core.threads[uop.thread_id]
        if not thread.is_exception_thread:
            self.traditional.on_hardexc(uop, now)
            return
        # Page fault discovered mid-handler: throw the in-progress handler
        # away and re-execute the whole exception traditionally.
        self.stats.hard_exceptions += 1
        instance = thread.exc_instance
        if instance is not None:
            self.spawn_predictor.record_reversion(instance.exc_type)
        master = self.core.threads[thread.master_tid]
        if instance is not None and instance.exc_type == "itlb_miss":
            # Master-less reversion.  Only re-trap the master if it is
            # still stalled waiting on *this* miss: a speculatively
            # executed itlbwr may already have woken it (and been rolled
            # back when the walk-fault branch resolved), in which case
            # the master has moved on -- possibly into a different trap
            # whose latched VA/EXC_PC must not be clobbered.  The
            # rolled-back entry simply re-misses on next use.
            va = instance.va
            stalled = master.fetch_stall_until >= _FAR_FUTURE
            self._reclaim(thread, now)
            if stalled:
                self.traditional.trap_itlb(master, va // 4, now)
            return
        master_uop = instance.master_uop if instance else None
        self._reclaim(thread, now)
        if master_uop is not None and master_uop.state != UopState.SQUASHED:
            self.traditional.trap(master, master_uop, instance.va, now)

    def on_reti_executed(self, uop: Uop, now: int) -> None:
        """Exception-thread reti needs no redirect; route traditional."""
        thread = self.core.threads[uop.thread_id]
        if not thread.is_exception_thread:
            self.traditional.on_reti_executed(uop, now)

    def on_reti_retired(self, uop: Uop, now: int) -> None:
        """Handler fully retired: confirm fills, free the context."""
        thread = self.core.threads[uop.thread_id]
        if not thread.is_exception_thread:
            self.traditional.on_reti_retired(uop, now)
            return
        instance = thread.exc_instance
        if instance is not None:
            self.spawn_predictor.record_success(instance.exc_type)
            if instance.exc_type == "dtlb_miss":
                self.core.dtlb.confirm(instance.id)
                self.stats.committed_fills += 1
            elif instance.exc_type == "itlb_miss":
                self.core.itlb.confirm(instance.id)
                self.stats.committed_fills += 1
                # Normally woken at the itlbwr fill; belt-and-braces for
                # any front end still parked on this instance.
                self._wake_itlb_masters(instance.vpn, now)
                if self._itlb_pending.get(instance.vpn) is instance:
                    del self._itlb_pending[instance.vpn]
            else:
                self.stats.emulations += 1
            if instance.master_uop is not None:
                instance.master_uop.linked_handler = None
            if self._by_vpn.get(instance.vpn) is instance:
                del self._by_vpn[instance.vpn]
            self.core.window.release(instance.id)
            if instance.spawn_cycle >= 0:
                self._cause_count(
                    self.core.stats.cause_handler_cycles,
                    instance.exc_type,
                    now - instance.spawn_cycle,
                )
            self._emit_splice(instance, thread.tid, "thread", now)
        self._thread_freed(thread, now)
        thread.reset_to_idle()

    def _thread_freed(self, thread: ThreadContext, now: int) -> None:
        """Hook for quick-start: a context is about to go idle."""

    def next_event_cycle(self, now: int) -> int:
        """Purely reactive: spawns, fills, and reclaims all happen in
        response to core events (handler instructions execute through the
        ordinary pipeline, whose wakeups the core enumerates itself).

        Quick-start inherits this: its prefetch runs whenever idle fetch
        bandwidth exists, so on any quiet cycle it already ran (and found
        nothing to do), and nothing changes that until some other event.
        """
        return 1 << 60

    # ------------------------------------------------------------------
    def on_uop_squashed(self, uop: Uop, now: int) -> None:
        """Reclaim handler threads/fills linked to squashed uops."""
        instance = uop.exc_instance
        if instance is None:
            if uop.waiting_fill is not None:
                # A buffered secondary miss died; drop it from its instance.
                pending = self._by_vpn.get(uop.waiting_fill)
                if pending is not None and uop in pending.waiters:
                    pending.waiters.remove(uop)
            return
        if uop.inst.op in (Opcode.TLBWR, Opcode.ITLBWR):
            if not self.core.threads[uop.thread_id].is_exception_thread:
                self.traditional.on_uop_squashed(uop, now)
            # Exception-thread tlbwr squashes are handled by _reclaim.
            return
        if instance.master_uop is uop and instance.thread is not None:
            # The excepting instruction died: reclaim the handler context.
            self._reclaim(instance.thread, now)
        elif instance.master_uop is uop:
            instance.squashed = True
            if self._by_vpn.get(instance.vpn) is instance:
                del self._by_vpn[instance.vpn]

    def inject_handler_fault(self, now: int) -> str | None:
        """Fault the oldest live handler thread: squash and respawn.

        The same recovery path as the page-table-write check
        (:meth:`on_store_retired`): reclaim the exception context, then
        re-raise the master's exception so handling restarts from
        scratch.  Buffered secondary misses re-raise themselves on their
        next issue attempt (``waiting_fill`` cleared by ``_reclaim``).

        Each master instruction's exception is faulted at most once
        (the re-raise spawns a *new* instance, so the guard keys on the
        master's sequence number): short injection periods would
        otherwise re-fault every respawned handler before it completes
        and livelock the machine.
        """
        refaulted = getattr(self, "_refaulted_masters", None)
        if refaulted is None:
            refaulted = self._refaulted_masters = set()
        for thread in self.core.threads:
            if thread.state is not ThreadState.EXCEPTION:
                continue
            instance = thread.exc_instance
            if instance is None or instance.squashed:
                continue
            master_uop = instance.master_uop
            exc_type = instance.exc_type
            if master_uop is None:
                # Master-less ITLB handler: key the once-only guard on the
                # (stalled thread, page) pair instead of a master seq.
                key = ("itlb", thread.master_tid, instance.vpn)
                if key in refaulted:
                    continue
                refaulted.add(key)
                # Reclaim wakes the stalled front ends; their refetch
                # re-misses and respawns the handler from scratch.
                self._reclaim(thread, now)
                return f"squashed handler thread t{thread.tid} ({exc_type})"
            if master_uop.seq in refaulted:
                continue  # once per master: guarantees forward progress
            va, vpn, src = instance.va, instance.vpn, instance.src_value
            refaulted.add(master_uop.seq)
            self._reclaim(thread, now)
            if master_uop.state != UopState.SQUASHED:
                if exc_type == "dtlb_miss":
                    self.on_dtlb_miss(master_uop, va, vpn, now)
                elif exc_type == "unaligned":
                    self.on_unaligned(master_uop, va, now)
                else:
                    self.on_emulation(master_uop, src, now)
            return f"squashed handler thread t{thread.tid} ({exc_type})"
        # No handler thread in flight: maybe a reverted (traditional)
        # trap is -- fault that instead.
        return self.traditional.inject_handler_fault(now)

    def _reclaim(self, thread: ThreadContext, now: int) -> None:
        """Squash an exception thread and return it to the idle pool."""
        self.stats.reclaimed_threads += 1
        core = self.core
        instance = thread.exc_instance
        if instance is not None:
            self._emit_splice(instance, thread.tid, "reclaimed", now)
        # Detach links first so the rob squash does not recurse into us.
        if instance is not None:
            instance.squashed = True
            if instance.master_uop is not None:
                instance.master_uop.linked_handler = None
                instance.master_uop.exc_instance = None
            for waiter in instance.alive_waiters():
                waiter.waiting_fill = None  # re-raise on next issue attempt
                core.wake_uop(waiter)
            if self._by_vpn.get(instance.vpn) is instance:
                del self._by_vpn[instance.vpn]
            if instance.exc_type == "itlb_miss":
                # Wake the stalled front ends: their refetch re-raises
                # the miss (the fill, if any, rolls back below).
                self._wake_itlb_masters(instance.vpn, now)
                if self._itlb_pending.get(instance.vpn) is instance:
                    del self._itlb_pending[instance.vpn]
                core.itlb.rollback(instance.id)
            core.dtlb.rollback(instance.id)
            core.window.release(instance.id)
        thread.exc_instance = None
        core.squash_all(thread, now)
        self._thread_freed(thread, now)
        thread.reset_to_idle()

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        state = super().snapshot_state(ctx)
        state["traditional"] = self.traditional.snapshot_state(ctx)
        # on_store_retired scans _by_vpn in insertion order: encode pairs
        # verbatim, not sorted.
        state["by_vpn"] = [
            [vpn, ctx.instance_ref(inst)]
            for vpn, inst in self._by_vpn.items()
        ]
        state["itlb_pending"] = [
            [vpn, ctx.instance_ref(inst)]
            for vpn, inst in self._itlb_pending.items()
        ]
        state["itlb_waiters"] = [
            [vpn, list(tids)] for vpn, tids in self._itlb_waiters.items()
        ]
        state["spawn_predictor"] = self.spawn_predictor.snapshot_state(ctx)
        state["suppressed"] = [[k, v] for k, v in self._suppressed.items()]
        state["spawn_probe_interval"] = self.spawn_probe_interval
        return state

    def restore_state(self, state: dict, ctx) -> None:
        super().restore_state(state, ctx)
        self.traditional.restore_state(state["traditional"], ctx)
        self._by_vpn = {
            vpn: ctx.resolve_instance(ref) for vpn, ref in state["by_vpn"]
        }
        # .get(): pre-scenario checkpoints have no ITLB state.
        self._itlb_pending = {
            vpn: ctx.resolve_instance(ref)
            for vpn, ref in state.get("itlb_pending", [])
        }
        self._itlb_waiters = {
            vpn: list(tids) for vpn, tids in state.get("itlb_waiters", [])
        }
        self.spawn_predictor.restore_state(state["spawn_predictor"], ctx)
        self._suppressed = {k: v for k, v in state["suppressed"]}
        self.spawn_probe_interval = state["spawn_probe_interval"]

    def drain(self, now: int) -> None:
        """Forget in-flight exception work.  Handler threads with a master
        uop were already reclaimed by the squash cascade (their masters
        died); master-less ITLB handlers have no uop to die with and are
        reclaimed here.  Predictor learning state is architectural and
        survives."""
        for thread in self.core.threads:
            if (
                thread.state is ThreadState.EXCEPTION
                and thread.exc_instance is not None
                and thread.exc_instance.master_uop is None
            ):
                self._reclaim(thread, now)
        self.traditional.drain(now)
        self._by_vpn.clear()
        self._itlb_pending.clear()
        self._itlb_waiters.clear()

    def drain_resume_pc(self, thread: ThreadContext) -> int:
        # Only the traditional fallback leaves a NORMAL thread mid-handler
        # (handler threads are EXCEPTION-state and reclaimed wholesale).
        return self.traditional.drain_resume_pc(thread)

    def on_store_retired(self, addr: int, now: int) -> None:
        """A committed store wrote the page-table region: if an in-flight
        handler read (or may read) that PTE, squash and respawn it."""
        pt = self.core.page_table
        for instance in list(self._by_vpn.values()):
            if instance.thread is None or instance.squashed:
                continue
            if pt.pte_address(instance.vpn) != addr:
                continue
            master_uop = instance.master_uop
            va = instance.va
            vpn = instance.vpn
            self._reclaim(instance.thread, now)
            if master_uop is not None and master_uop.state != UopState.SQUASHED:
                self.on_dtlb_miss(master_uop, va, vpn, now)
        for instance in list(self._itlb_pending.values()):
            if instance.thread is None or instance.squashed:
                continue
            if pt.pte_address(instance.vpn) != addr:
                continue
            # Reclaim wakes the stalled front ends; their refetch
            # re-misses and handling restarts against the new PTE.
            self._reclaim(instance.thread, now)
