"""The hardware TLB miss handler (FSM page walker) -- the paper's
aggressive baseline.

No instructions are fetched: a finite-state machine walks the page table
directly.  Per the paper's Section 5.1 description it

* requires memory-system bandwidth: each walk's PTE load must win a
  load/store port (leftover port capacity is offered by the core each
  cycle) and then travels through the cache hierarchy like any load;
* can handle multiple misses in parallel (``walker_entries`` concurrent
  walks, with secondary misses to an in-flight page merged);
* **speculatively fills the TLB** if the faulting instruction hasn't
  been squashed by the time the translation is computed -- fills are
  installed as committed entries immediately, which is what lets
  wrong-path misses pollute the TLB (the gcc anomaly);
* falls back to a traditional software trap when the walk finds an
  invalid PTE (page fault).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions.base import ExceptionInstance, ExceptionMechanism
from repro.exceptions.traditional import TraditionalMechanism
from repro.memory.page_table import pte_valid, pte_pfn
from repro.pipeline.uop import Uop, UopState


@dataclass
class _Walk:
    """One in-flight page walk."""

    instance: ExceptionInstance
    pte_addr: int
    port_granted: bool = False
    completion: int = -1


class HardwareWalkerMechanism(ExceptionMechanism):
    """Finite-state-machine page walking."""

    name = "hardware"

    def __init__(
        self,
        walker_entries: int | None = None,
        walker_latency: int | None = None,
    ) -> None:
        super().__init__()
        self._walker_entries = walker_entries
        #: FSM sequencing overhead per walk (state transitions plus the
        #: virtually-mapped page table's nested lookup on Alpha-style
        #: machines); added on top of the PTE load's cache latency.
        self._walker_latency = walker_latency
        self._walks: dict[int, _Walk] = {}  # vpn -> walk
        self._overflow: list[Uop] = []  # misses waiting for a walker slot

    def attach(self, core) -> None:
        """Bind to the core; resolve walker parameters from config."""
        super().attach(core)
        if self._walker_entries is None:
            self._walker_entries = core.config.walker_entries
        if self._walker_latency is None:
            self._walker_latency = core.config.walker_latency
        self.traditional = TraditionalMechanism()
        self.traditional.attach(core)
        self.traditional.stats = self.stats

    # ------------------------------------------------------------------
    def on_dtlb_miss(self, uop: Uop, va: int, vpn: int, now: int) -> None:
        """Start (or merge into) a page walk; queue on walker overflow."""
        self.stats.misses_seen += 1
        walk = self._walks.get(vpn)
        if walk is not None:
            self.stats.secondary_merges += 1
            walk.instance.waiters.append(uop)
            uop.waiting_fill = vpn
            return
        if len(self._walks) >= self._walker_entries:
            # All walkers busy: the miss retries once a walker frees up.
            uop.waiting_fill = vpn
            self._overflow.append(uop)
            return
        self._start_walk(uop, va, vpn, now)

    def _start_walk(self, uop: Uop, va: int, vpn: int, now: int) -> None:
        self.stats.walks_started += 1
        instance = ExceptionInstance(vpn=vpn, va=va, master_uop=uop)
        instance.spawn_cycle = now
        self._emit_spawn(instance, uop.thread_id, "walk", now)
        uop.waiting_fill = vpn
        self._walks[vpn] = _Walk(
            instance=instance, pte_addr=self.core.page_table.pte_address(vpn)
        )

    # ------------------------------------------------------------------
    def service_mem_ports(self, now: int, free_ports: int) -> int:
        """Grant leftover load/store ports to waiting walks (the walker
        competes with normal instruction execution for cache ports)."""
        used = 0
        for walk in self._walks.values():
            if used >= free_ports:
                break
            if not walk.port_granted:
                walk.port_granted = True
                walk.completion = (
                    self.core.hierarchy.load(walk.pte_addr, now)
                    + self._walker_latency
                )
                used += 1
        return used

    def tick(self, now: int) -> None:
        """Complete finished walks and drain the overflow queue."""
        finished = [
            vpn
            for vpn, walk in self._walks.items()
            if walk.port_granted and walk.completion <= now
        ]
        for vpn in finished:
            walk = self._walks.pop(vpn)
            self._complete_walk(walk, now)
        if self._overflow and len(self._walks) < self._walker_entries:
            self._drain_overflow(now)

    def _complete_walk(self, walk: _Walk, now: int) -> None:
        self.stats.walks_completed += 1
        core = self.core
        instance = walk.instance
        pte = int(core.memory.read_word(walk.pte_addr))
        survivors = [
            u
            for u in [instance.master_uop, *instance.waiters]
            if u is not None and u.state != UopState.SQUASHED
        ]
        master = instance.master_uop
        walk_tid = master.thread_id if master is not None else -1
        if not survivors:
            # Everything that wanted this page died: drop the fill.
            self.stats.walks_dropped += 1
            self._emit_splice(instance, walk_tid, "dropped", now)
            return
        if not pte_valid(pte):
            # Page fault: revert to a traditional software trap for the
            # oldest surviving faulter.
            self.stats.page_faults += 1
            oldest = min(survivors, key=lambda u: u.seq)
            thread = core.threads[oldest.thread_id]
            self._emit_splice(instance, walk_tid, "fault", now)
            self.traditional.trap(thread, oldest, instance.va, now)
            for uop in survivors:
                uop.waiting_fill = None
                core.wake_uop(uop)
            return
        core.dtlb.fill(instance.vpn, pte_pfn(pte), speculative=False)
        self.stats.committed_fills += 1
        instance.filled = True
        instance.fill_cycle = now
        self._emit_splice(instance, walk_tid, "walk", now)
        for uop in survivors:
            uop.waiting_fill = None
            core.wake_uop(uop)

    def _drain_overflow(self, now: int) -> None:
        still_waiting: list[Uop] = []
        for uop in self._overflow:
            if uop.state == UopState.SQUASHED:
                continue
            if len(self._walks) >= self._walker_entries:
                still_waiting.append(uop)
                continue
            vpn = uop.waiting_fill
            walk = self._walks.get(vpn)
            if walk is not None:
                walk.instance.waiters.append(uop)
            else:
                va = uop.eff_addr if uop.eff_addr is not None else 0
                self._start_walk(uop, va, vpn, now)
        self._overflow = still_waiting

    def inject_handler_fault(self, now: int) -> str | None:
        """Fault the oldest in-flight page walk: abort and re-raise.

        Models a detected walker FSM fault: the walk (and its granted
        port) is thrown away and every surviving faulter re-issues, so
        the miss re-raises and a fresh walk starts -- the same retry
        discipline as the multithreaded reclaim.  Falls back to faulting
        a traditional page-fault trap when no walk is in flight.

        Each master's walk is aborted at most once (the retry starts a
        *new* walk, so the guard keys on the master's sequence number):
        short injection periods would otherwise abort every retried
        walk and livelock the machine.
        """
        core = self.core
        refaulted = getattr(self, "_refaulted_masters", None)
        if refaulted is None:
            refaulted = self._refaulted_masters = set()
        vpn = None
        for candidate in self._walks:
            master = self._walks[candidate].instance.master_uop
            if master is not None and master.seq in refaulted:
                continue  # once per master: guarantees forward progress
            vpn = candidate
            break
        if vpn is not None:
            walk = self._walks.pop(vpn)
            instance = walk.instance
            if instance.master_uop is not None:
                refaulted.add(instance.master_uop.seq)
            self.stats.walks_dropped += 1
            master = instance.master_uop
            walk_tid = master.thread_id if master is not None else -1
            instance.squashed = True
            self._emit_splice(instance, walk_tid, "dropped", now)
            for uop in [master, *instance.waiters]:
                if uop is not None and uop.state != UopState.SQUASHED:
                    uop.waiting_fill = None
                    core.wake_uop(uop)
            return f"aborted page walk for vpn {vpn:#x}"
        return self.traditional.inject_handler_fault(now)

    def next_event_cycle(self, now: int) -> int:
        """Next autonomous walker action: a port grant (imminent -- block
        fast-forward) or the earliest in-flight walk completion.

        Overflow with a free walker slot also blocks fast-forward; with
        all slots busy it drains at some walk's completion, which the
        minimum below already covers.
        """
        nxt = 1 << 60
        for walk in self._walks.values():
            if not walk.port_granted:
                return now
            if walk.completion < nxt:
                nxt = walk.completion
        if self._overflow and len(self._walks) < self._walker_entries:
            return now
        return nxt

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        state = super().snapshot_state(ctx)
        state["traditional"] = self.traditional.snapshot_state(ctx)
        state["walker_entries"] = self._walker_entries
        state["walker_latency"] = self._walker_latency
        # Port grants and completions scan _walks in insertion order:
        # encode pairs verbatim, not sorted.
        state["walks"] = [
            [
                vpn,
                {
                    "instance": ctx.instance_ref(walk.instance),
                    "pte_addr": walk.pte_addr,
                    "port_granted": walk.port_granted,
                    "completion": walk.completion,
                },
            ]
            for vpn, walk in self._walks.items()
        ]
        state["overflow"] = [ctx.uop_ref(u) for u in self._overflow]
        return state

    def restore_state(self, state: dict, ctx) -> None:
        super().restore_state(state, ctx)
        self.traditional.restore_state(state["traditional"], ctx)
        self._walker_entries = state["walker_entries"]
        self._walker_latency = state["walker_latency"]
        self._walks = {
            vpn: _Walk(
                instance=ctx.resolve_instance(w["instance"]),
                pte_addr=w["pte_addr"],
                port_granted=w["port_granted"],
                completion=w["completion"],
            )
            for vpn, w in state["walks"]
        }
        self._overflow = [ctx.resolve_uop(s) for s in state["overflow"]]

    def drain(self, now: int) -> None:
        """Abandon in-flight walks and queued misses; every uop that was
        waiting on them has been squashed by the core."""
        self.traditional.drain(now)
        self._walks.clear()
        self._overflow.clear()

    def drain_resume_pc(self, thread) -> int:
        return self.traditional.drain_resume_pc(thread)

    # ------------------------------------------------------------------
    def on_emulation(self, uop: Uop, src_value: int, now: int) -> None:
        """No hardware emulates instructions: trap traditionally."""
        # No hardware emulates instructions: trap traditionally.
        self.traditional.on_emulation(uop, src_value, now)

    def on_itlb_miss(self, thread, pc: int, now: int) -> None:
        """The walker is a data-side FSM: fetch misses trap traditionally."""
        self.traditional.on_itlb_miss(thread, pc, now)

    def on_unaligned(self, uop: Uop, addr: int, now: int) -> None:
        """No hardware fixes up alignment: trap traditionally."""
        self.traditional.on_unaligned(uop, addr, now)

    def on_tlbwr(self, uop: Uop, va: int, pte: int, now: int) -> None:
        """Handler software only runs on the traditional fallback."""
        # Only the traditional fallback path executes handler software.
        self.traditional.on_tlbwr(uop, va, pte, now)

    def on_hardexc(self, uop: Uop, now: int) -> None:
        """Delegate to the traditional fallback."""
        self.traditional.on_hardexc(uop, now)

    def on_reti_executed(self, uop: Uop, now: int) -> None:
        """Delegate to the traditional fallback."""
        self.traditional.on_reti_executed(uop, now)

    def on_reti_retired(self, uop: Uop, now: int) -> None:
        """Delegate to the traditional fallback."""
        self.traditional.on_reti_retired(uop, now)

    def on_uop_squashed(self, uop: Uop, now: int) -> None:
        """Drop squashed misses from the overflow queue."""
        self.traditional.on_uop_squashed(uop, now)
        if uop in self._overflow:
            self._overflow.remove(uop)
