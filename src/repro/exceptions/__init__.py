"""Exception architectures -- the paper's contribution and its baselines.

Four mechanisms, all pluggable into the SMT core:

* :class:`~repro.exceptions.traditional.TraditionalMechanism` -- trap by
  squashing the faulting instruction and everything younger, fetching the
  handler into the *same* thread, and refetching the application after
  ``reti`` (which is unpredicted, costing a second pipeline refill).
* :class:`~repro.exceptions.multithreaded.MultithreadedMechanism` -- the
  paper's proposal: spawn the handler into an idle SMT context, keep the
  main thread fetching, splice the handler into the retirement stream
  before the excepting instruction, reserve window slots, squash the main
  thread's tail if the handler would otherwise deadlock, buffer secondary
  same-page misses and re-link the handler to an older excepting
  instruction seen out of order, and revert to the traditional mechanism
  when no idle context exists or when the handler raises ``hardexc``.
* :class:`~repro.exceptions.hardware.HardwareWalkerMechanism` -- a
  finite-state-machine page walker that fetches no instructions but
  competes for load/store ports and fills the TLB speculatively.
* :class:`~repro.exceptions.quickstart.QuickStartMechanism` -- the
  multithreaded mechanism plus the paper's quick-start optimisation: the
  predicted next handler is prefetched into an idle thread's fetch buffer
  so a spawned handler skips fetch latency (but still pays decode).

:mod:`~repro.exceptions.limits` holds the Table 3 limit-study knobs.
"""

# Mechanism modules import pipeline types, which import the machine
# config, which needs LimitKnobs from this package -- so everything here
# is loaded lazily (PEP 562) to keep `from repro.exceptions.limits
# import LimitKnobs` cycle-free.
_LAZY = {
    "ExceptionInstance": "repro.exceptions.base",
    "ExceptionMechanism": "repro.exceptions.base",
    "build_dtlb_handler": "repro.exceptions.handler_code",
    "handler_length": "repro.exceptions.handler_code",
    "HardwareWalkerMechanism": "repro.exceptions.hardware",
    "LimitKnobs": "repro.exceptions.limits",
    "MultithreadedMechanism": "repro.exceptions.multithreaded",
    "ExceptionTypePredictor": "repro.exceptions.predictors",
    "HandlerLengthPredictor": "repro.exceptions.predictors",
    "QuickStartMechanism": "repro.exceptions.quickstart",
    "TraditionalMechanism": "repro.exceptions.traditional",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "ExceptionInstance",
    "ExceptionMechanism",
    "build_dtlb_handler",
    "handler_length",
    "HardwareWalkerMechanism",
    "LimitKnobs",
    "MultithreadedMechanism",
    "ExceptionTypePredictor",
    "HandlerLengthPredictor",
    "QuickStartMechanism",
    "TraditionalMechanism",
]


def make_mechanism(name: str):
    """Construct an (unattached) mechanism by configuration name."""
    if name == "traditional":
        from repro.exceptions.traditional import TraditionalMechanism

        return TraditionalMechanism()
    if name == "multithreaded":
        from repro.exceptions.multithreaded import MultithreadedMechanism

        return MultithreadedMechanism()
    if name == "hardware":
        from repro.exceptions.hardware import HardwareWalkerMechanism

        return HardwareWalkerMechanism()
    if name == "quickstart":
        from repro.exceptions.quickstart import QuickStartMechanism

        return QuickStartMechanism()
    if name == "perfect":
        return None  # Perfect TLB: no mechanism is ever invoked.
    raise ValueError(f"unknown mechanism {name!r}")
