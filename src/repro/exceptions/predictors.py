"""Small hardware predictors supporting the exception architecture.

* :class:`ExceptionTypePredictor` -- Section 5.4: quick-start must guess
  *which* exception will occur next to prefetch its handler.  A small
  table of saturating counters per exception type (the paper suggests
  2-4 bits for each of ~16 types).  With only data-TLB misses modelled
  the prediction is trivially perfect, which the paper itself notes is
  optimistic.
* :class:`HandlerLengthPredictor` -- Section 4.4: the fetch engine stops
  fetching a handler thread after the predicted handler length to avoid
  wasted fetch cycles.  Last-value prediction per exception type; Table 1
  assumes it is perfect in the common case.
* :class:`SpawnPredictor` -- Section 4.3: learns which exception types
  are implemented with spawning in mind by tracking ``hardexc`` usage,
  so exceptions that always revert skip the multithreaded attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExceptionTypePredictor:
    """History-based next-exception-type predictor."""

    counter_bits: int = 2
    _counters: dict[str, int] = field(default_factory=dict)
    predictions: int = 0
    correct: int = 0

    @property
    def _max(self) -> int:
        return (1 << self.counter_bits) - 1

    def record(self, exc_type: str) -> None:
        """An exception of ``exc_type`` occurred."""
        for key in self._counters:
            if key != exc_type and self._counters[key] > 0:
                self._counters[key] -= 1
        current = self._counters.get(exc_type, 0)
        self._counters[exc_type] = min(self._max, current + 1)

    def predict(self) -> str | None:
        """The most likely next exception type (None before any history)."""
        if not self._counters:
            return None
        return max(self._counters.items(), key=lambda kv: kv[1])[0]

    def verify(self, actual: str) -> bool:
        """Score a prediction against the exception that occurred."""
        predicted = self.predict()
        self.predictions += 1
        hit = predicted == actual
        if hit:
            self.correct += 1
        return hit

    # -- checkpoint protocol --------------------------------------------
    #: Counter order matters: :meth:`predict` breaks ties by insertion
    #: order, so the table is encoded as ordered pairs, not a sorted map.
    def snapshot_state(self, ctx) -> dict:
        return {
            "counter_bits": self.counter_bits,
            "counters": [[k, v] for k, v in self._counters.items()],
            "predictions": self.predictions,
            "correct": self.correct,
        }

    def restore_state(self, state: dict, ctx) -> None:
        self.counter_bits = state["counter_bits"]
        self._counters = {k: v for k, v in state["counters"]}
        self.predictions = state["predictions"]
        self.correct = state["correct"]


@dataclass
class HandlerLengthPredictor:
    """Last-value handler-length prediction per exception type."""

    _lengths: dict[str, int] = field(default_factory=dict)

    def record(self, exc_type: str, length: int) -> None:
        self._lengths[exc_type] = length

    def predict(self, exc_type: str, default: int) -> int:
        return self._lengths.get(exc_type, default)

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        return {"lengths": [[k, v] for k, v in self._lengths.items()]}

    def restore_state(self, state: dict, ctx) -> None:
        self._lengths = {k: v for k, v in state["lengths"]}


@dataclass
class SpawnPredictor:
    """2-bit confidence per exception type: worth spawning a thread?

    Starts optimistic; ``hardexc`` reversions decay confidence, clean
    multithreaded completions restore it.  This lets the hardware adapt
    to OSes that implement only some handlers with spawning in mind, and
    to dynamic behaviour like clustered page faults (Section 4.3).
    """

    counter_bits: int = 2
    _counters: dict[str, int] = field(default_factory=dict)

    @property
    def _max(self) -> int:
        return (1 << self.counter_bits) - 1

    def should_spawn(self, exc_type: str) -> bool:
        """True when confidence says a handler thread is worthwhile."""
        return self._counters.get(exc_type, self._max) >= (self._max + 1) // 2

    def record_success(self, exc_type: str) -> None:
        """A spawned handler completed cleanly: raise confidence."""
        current = self._counters.get(exc_type, self._max)
        self._counters[exc_type] = min(self._max, current + 1)

    def record_reversion(self, exc_type: str) -> None:
        """A spawned handler reverted (hardexc): lower confidence."""
        current = self._counters.get(exc_type, self._max)
        self._counters[exc_type] = max(0, current - 1)

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        return {
            "counter_bits": self.counter_bits,
            "counters": [[k, v] for k, v in self._counters.items()],
        }

    def restore_state(self, state: dict, ctx) -> None:
        self.counter_bits = state["counter_bits"]
        self._counters = {k: v for k, v in state["counters"]}
