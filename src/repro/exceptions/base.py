"""Common machinery for exception mechanisms.

An :class:`ExceptionMechanism` is a strategy object the SMT core invokes
at well-defined points: when a user-mode memory operation misses the
DTLB, when handler instructions (``tlbwr``/``hardexc``/``reti``) execute
or retire, when uops are squashed, and once per cycle for autonomous
hardware (the FSM walker, quick-start prefetch).

Every dynamic exception is tracked by an :class:`ExceptionInstance`,
which doubles as the *producer* identity for speculative TLB fills: the
fill is confirmed if the instance's handler retires and rolled back if it
is squashed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore
    from repro.pipeline.thread import ThreadContext
    from repro.pipeline.uop import Uop

_instance_ids = itertools.count(1)


@dataclass
class ExceptionInstance:
    """One dynamic exception from detection to completion."""

    vpn: int
    va: int
    #: The excepting instruction (None for the traditional mechanism,
    #: whose faulting instruction is squashed and refetched).
    master_uop: "Uop | None"
    #: The exception thread running the handler (None for traditional and
    #: hardware handling).
    thread: "ThreadContext | None" = None
    #: Exception type: "dtlb_miss" or "emul".
    exc_type: str = "dtlb_miss"
    #: Latched source value of the excepting instruction (Section 6
    #: register-read access; emulation exceptions).
    src_value: int = 0
    id: int = field(default_factory=lambda: next(_instance_ids))
    #: Faulting uops (beyond the master) waiting on this fill.
    waiters: list = field(default_factory=list)
    filled: bool = False
    fill_cycle: int = -1
    squashed: bool = False
    spawn_cycle: int = -1

    def alive_waiters(self) -> list:
        """Waiters that have not been squashed."""
        from repro.pipeline.uop import UopState  # local import: cycle guard

        return [w for w in self.waiters if w.state != UopState.SQUASHED]


@dataclass
class MechanismStats:
    """Counters shared by every exception mechanism."""

    misses_seen: int = 0
    spawns: int = 0
    traps: int = 0
    committed_fills: int = 0
    secondary_merges: int = 0
    relinks: int = 0
    reverted_no_thread: int = 0
    hard_exceptions: int = 0
    emulations: int = 0
    quickstart_wrong_type: int = 0
    reclaimed_threads: int = 0
    quickstart_hits: int = 0
    quickstart_partial: int = 0
    walks_started: int = 0
    walks_completed: int = 0
    walks_dropped: int = 0
    page_faults: int = 0


class ExceptionMechanism:
    """Base class: no-op hooks plus the attach protocol."""

    name = "base"

    def __init__(self) -> None:
        self.core: "SMTCore | None" = None
        self.stats = MechanismStats()

    def attach(self, core: "SMTCore") -> None:
        """Bind to a core.  Called once by the simulator before running."""
        self.core = core

    # -- observability ---------------------------------------------------
    def _emit_spawn(
        self,
        instance: ExceptionInstance,
        tid: int,
        path: str,
        now: int,
        master_tid: int | None = None,
        master_seq: int | None = None,
    ) -> None:
        """Report to the event bus that handling began (no-op when off).

        ``path`` records the route taken: ``thread`` (handler thread),
        ``trap`` (traditional squash-and-refetch), ``walk`` (hardware
        FSM).  Master identity defaults to ``instance.master_uop`` and
        must be passed explicitly by the traditional engine, whose
        instances do not keep the (squashed) faulting uop.
        """
        bus = self.core.listeners
        if bus is None:
            return
        master = instance.master_uop
        if master_tid is None:
            master_tid = master.thread_id if master is not None else -1
        if master_seq is None:
            master_seq = master.seq if master is not None else -1
        bus.spawn(
            now, tid, instance.id, instance.exc_type, master_tid, master_seq,
            path,
        )

    def _emit_splice(
        self, instance: ExceptionInstance, tid: int, path: str, now: int
    ) -> None:
        """Report that handling ended; ``path`` names the clean route
        (``thread``/``trap``/``walk``) or the abort reason
        (``reclaimed``/``dropped``/``fault``)."""
        bus = self.core.listeners
        if bus is None:
            return
        master = instance.master_uop
        bus.splice(
            now, tid, instance.id, instance.exc_type,
            master.thread_id if master is not None else -1,
            master.seq if master is not None else -1,
            path,
        )

    # -- events from the execute stage ---------------------------------
    def on_dtlb_miss(self, uop: "Uop", va: int, vpn: int, now: int) -> None:
        """A user-mode memory op failed translation at issue time."""
        raise NotImplementedError

    def on_tlbwr(self, uop: "Uop", va: int, pte: int, now: int) -> None:
        """A handler executed ``tlbwr``."""

    def on_emulation(self, uop: "Uop", src_value: int, now: int) -> None:
        """A user-mode ``emul`` instruction needs software emulation."""
        raise NotImplementedError

    def on_mtdst(self, uop: "Uop", value: int, now: int) -> None:
        """A handler executed ``mtdst`` (write the excepting dest)."""

    def on_hardexc(self, uop: "Uop", now: int) -> None:
        """A handler executed ``hardexc`` (needs the traditional path)."""

    def on_reti_executed(self, uop: "Uop", now: int) -> None:
        """A handler's ``reti`` executed (fetch redirect point)."""

    # -- events from the retire stage -----------------------------------
    def on_reti_retired(self, uop: "Uop", now: int) -> None:
        """A handler's ``reti`` retired (fills become architectural)."""

    def on_store_retired(self, addr: int, now: int) -> None:
        """A committed store hit the page-table region (coherence hook)."""

    # -- events from squash recovery ------------------------------------
    def on_uop_squashed(self, uop: "Uop", now: int) -> None:
        """Any uop was squashed; mechanisms reclaim linked resources."""

    # -- autonomous activity ---------------------------------------------
    def tick(self, now: int) -> None:
        """Called at the top of every cycle."""

    def service_mem_ports(self, now: int, free_ports: int) -> int:
        """Offer leftover load/store ports; returns how many were used."""
        return 0

    def fetch_idle(self, now: int, budget: int) -> int:
        """Offer leftover fetch bandwidth (quick-start); returns used."""
        return 0

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle after ``now`` at which this mechanism may act
        *spontaneously* (via ``tick``/``service_mem_ports``/``fetch_idle``
        rather than in reaction to a core event).

        Used by the core's idle-cycle fast-forward: after a quiet cycle
        the clock may jump to the next wakeup, and this bound keeps the
        jump from skipping autonomous mechanism work.  Purely reactive
        mechanisms return a far-future sentinel; the conservative default
        returns ``now``, which disables fast-forward entirely for
        mechanisms that do not implement the hook.
        """
        return now
