"""Common machinery for exception mechanisms.

An :class:`ExceptionMechanism` is a strategy object the SMT core invokes
at well-defined points: when a user-mode memory operation misses the
DTLB, when handler instructions (``tlbwr``/``hardexc``/``reti``) execute
or retire, when uops are squashed, and once per cycle for autonomous
hardware (the FSM walker, quick-start prefetch).

Every dynamic exception is tracked by an :class:`ExceptionInstance`,
which doubles as the *producer* identity for speculative TLB fills: the
fill is confirmed if the instance's handler retires and rolled back if it
is squashed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.core import SMTCore
    from repro.pipeline.thread import ThreadContext
    from repro.pipeline.uop import Uop


class _InstanceIdSource:
    """Monotonic id allocator whose position can be saved and restored.

    Instance ids are producer tags for speculative TLB fills and keys for
    window reservations, so a restored simulation must resume allocating
    exactly where the snapshot left off or fresh instances could collide
    with ids recorded in restored state.
    """

    __slots__ = ("next_id",)

    def __init__(self, start: int = 1) -> None:
        self.next_id = start

    def __call__(self) -> int:
        value = self.next_id
        self.next_id = value + 1
        return value


_instance_ids = _InstanceIdSource(1)


def instance_id_state() -> int:
    """The next id the process-wide allocator will hand out."""
    return _instance_ids.next_id


def restore_instance_id_state(next_id: int) -> None:
    """Reposition the process-wide allocator (checkpoint restore)."""
    _instance_ids.next_id = next_id


@dataclass
class ExceptionInstance:
    """One dynamic exception from detection to completion."""

    vpn: int
    va: int
    #: The excepting instruction (None for the traditional mechanism,
    #: whose faulting instruction is squashed and refetched).
    master_uop: "Uop | None"
    #: The exception thread running the handler (None for traditional and
    #: hardware handling).
    thread: "ThreadContext | None" = None
    #: Exception cause: "dtlb_miss", "itlb_miss", "unaligned", "emul",
    #: "brev", or "swint" (docs/SCENARIOS.md cause catalog).
    exc_type: str = "dtlb_miss"
    #: Latched source value of the excepting instruction (Section 6
    #: register-read access; emulation exceptions).
    src_value: int = 0
    id: int = field(default_factory=_instance_ids)
    #: Faulting uops (beyond the master) waiting on this fill.
    waiters: list = field(default_factory=list)
    filled: bool = False
    fill_cycle: int = -1
    squashed: bool = False
    spawn_cycle: int = -1

    def alive_waiters(self) -> list:
        """Waiters that have not been squashed."""
        from repro.pipeline.uop import UopState  # local import: cycle guard

        return [w for w in self.waiters if w.state != UopState.SQUASHED]

    # -- checkpoint protocol --------------------------------------------
    _SNAPSHOT_TRANSIENT = ("master_uop", "thread", "waiters")

    def snapshot_state(self, ctx) -> dict:
        """Encode every field; uops by seq, threads by tid."""
        return {
            "vpn": self.vpn,
            "va": self.va,
            "master_uop": ctx.uop_ref(self.master_uop),
            "thread": self.thread.tid if self.thread is not None else None,
            "exc_type": self.exc_type,
            "src_value": self.src_value,
            "id": self.id,
            "waiters": [
                s for s in (ctx.uop_ref(w) for w in self.waiters)
                if s is not None
            ],
            "filled": self.filled,
            "fill_cycle": self.fill_cycle,
            "squashed": self.squashed,
            "spawn_cycle": self.spawn_cycle,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ExceptionInstance":
        """Rebuild scalars; object links are patched by :meth:`link_state`."""
        return cls(
            vpn=state["vpn"],
            va=state["va"],
            master_uop=None,
            thread=None,
            exc_type=state["exc_type"],
            src_value=state["src_value"],
            id=state["id"],
            filled=state["filled"],
            fill_cycle=state["fill_cycle"],
            squashed=state["squashed"],
            spawn_cycle=state["spawn_cycle"],
        )

    def link_state(self, state: dict, ctx) -> None:
        """Second restore pass: resolve uop/thread references."""
        self.master_uop = ctx.resolve_uop(state["master_uop"])
        self.thread = ctx.resolve_thread(state["thread"])
        self.waiters = [ctx.resolve_uop(s) for s in state["waiters"]]


@dataclass
class MechanismStats:
    """Counters shared by every exception mechanism."""

    misses_seen: int = 0
    spawns: int = 0
    traps: int = 0
    committed_fills: int = 0
    secondary_merges: int = 0
    relinks: int = 0
    reverted_no_thread: int = 0
    hard_exceptions: int = 0
    emulations: int = 0
    quickstart_wrong_type: int = 0
    reclaimed_threads: int = 0
    quickstart_hits: int = 0
    quickstart_partial: int = 0
    walks_started: int = 0
    walks_completed: int = 0
    walks_dropped: int = 0
    page_faults: int = 0


class ExceptionMechanism:
    """Base class: no-op hooks plus the attach protocol."""

    name = "base"

    def __init__(self) -> None:
        self.core: "SMTCore | None" = None
        self.stats = MechanismStats()

    def attach(self, core: "SMTCore") -> None:
        """Bind to a core.  Called once by the simulator before running."""
        self.core = core

    # -- checkpoint protocol --------------------------------------------
    #: ``core`` is rebound by attach(); stats are enumerated explicitly.
    _SNAPSHOT_TRANSIENT = ("core", "stats")

    def snapshot_state(self, ctx) -> dict:
        """Encode mechanism state; subclasses extend the returned dict."""
        return {
            "name": self.name,
            "stats": dataclasses.asdict(self.stats),
        }

    def restore_state(self, state: dict, ctx) -> None:
        """Restore in-place on an attached mechanism of the same kind."""
        if state["name"] != self.name:
            raise ValueError(
                f"snapshot holds {state['name']!r} mechanism state, "
                f"cannot restore into {self.name!r}"
            )
        for f in dataclasses.fields(self.stats):
            setattr(self.stats, f.name, state["stats"][f.name])

    def drain(self, now: int) -> None:
        """Drop all in-flight exception bookkeeping (quiesce support).

        Called after the core has squashed every in-flight uop; purely
        reactive mechanisms have nothing left to forget.
        """

    def drain_resume_pc(self, thread: "ThreadContext") -> int:
        """Architectural resume PC for a thread drained mid-trap-handler.

        Default: the latched exception return PC (re-execute the faulting
        instruction).  Mechanisms whose handlers return *past* the
        excepting instruction (emulation) override this.
        """
        from repro.isa.registers import PrivReg  # local: keep import light

        return thread.priv_regs[PrivReg.EXC_PC]

    # -- observability ---------------------------------------------------
    def _emit_spawn(
        self,
        instance: ExceptionInstance,
        tid: int,
        path: str,
        now: int,
        master_tid: int | None = None,
        master_seq: int | None = None,
    ) -> None:
        """Report to the event bus that handling began (no-op when off).

        ``path`` records the route taken: ``thread`` (handler thread),
        ``trap`` (traditional squash-and-refetch), ``walk`` (hardware
        FSM).  Master identity defaults to ``instance.master_uop`` and
        must be passed explicitly by the traditional engine, whose
        instances do not keep the (squashed) faulting uop.
        """
        bus = self.core.listeners
        if bus is None:
            return
        master = instance.master_uop
        if master_tid is None:
            master_tid = master.thread_id if master is not None else -1
        if master_seq is None:
            master_seq = master.seq if master is not None else -1
        bus.spawn(
            now, tid, instance.id, instance.exc_type, master_tid, master_seq,
            path,
        )

    def _emit_splice(
        self, instance: ExceptionInstance, tid: int, path: str, now: int
    ) -> None:
        """Report that handling ended; ``path`` names the clean route
        (``thread``/``trap``/``walk``) or the abort reason
        (``reclaimed``/``dropped``/``fault``)."""
        bus = self.core.listeners
        if bus is None:
            return
        master = instance.master_uop
        bus.splice(
            now, tid, instance.id, instance.exc_type,
            master.thread_id if master is not None else -1,
            master.seq if master is not None else -1,
            path,
        )

    # -- per-cause accounting (docs/SCENARIOS.md) ------------------------
    def _cause_count(self, table: dict, cause: str, n: int = 1) -> None:
        """Bump one of the core's per-cause counters (``cause_taken`` /
        ``cause_squashes`` / ``cause_handler_cycles``)."""
        if n:
            table[cause] = table.get(cause, 0) + n

    # -- events from the execute stage ---------------------------------
    def on_dtlb_miss(self, uop: "Uop", va: int, vpn: int, now: int) -> None:
        """A user-mode memory op failed translation at issue time."""
        raise NotImplementedError

    def on_tlbwr(self, uop: "Uop", va: int, pte: int, now: int) -> None:
        """A handler executed ``tlbwr`` or ``itlbwr``."""

    def on_emulation(self, uop: "Uop", src_value: int, now: int) -> None:
        """A user-mode ``emul``/``brev``/``swint`` needs software service."""
        raise NotImplementedError

    # -- events from the fetch stage -------------------------------------
    def on_itlb_miss(self, thread: "ThreadContext", pc: int, now: int) -> None:
        """User-mode instruction fetch failed ITLB translation at ``pc``.

        Unlike the data-side hooks there is no faulting uop: the fetch
        produced nothing.  The mechanism must eventually redirect
        ``thread`` into the ``itlb_miss`` handler (traditional trap) or
        stall it while a handler thread installs the translation.
        """
        raise NotImplementedError

    def on_unaligned(self, uop: "Uop", addr: int, now: int) -> None:
        """A user-mode ``ld`` issued with a non-8-aligned effective
        address (``config.align_check``); the fixup handler loads the
        aligned-down word and completes the load via ``mtdst``."""
        raise NotImplementedError

    def on_mtdst(self, uop: "Uop", value: int, now: int) -> None:
        """A handler executed ``mtdst`` (write the excepting dest)."""

    def on_hardexc(self, uop: "Uop", now: int) -> None:
        """A handler executed ``hardexc`` (needs the traditional path)."""

    def on_reti_executed(self, uop: "Uop", now: int) -> None:
        """A handler's ``reti`` executed (fetch redirect point)."""

    # -- events from the retire stage -----------------------------------
    def on_reti_retired(self, uop: "Uop", now: int) -> None:
        """A handler's ``reti`` retired (fills become architectural)."""

    def on_store_retired(self, addr: int, now: int) -> None:
        """A committed store hit the page-table region (coherence hook)."""

    # -- events from squash recovery ------------------------------------
    def on_uop_squashed(self, uop: "Uop", now: int) -> None:
        """Any uop was squashed; mechanisms reclaim linked resources."""

    # -- fault injection --------------------------------------------------
    def inject_handler_fault(self, now: int) -> str | None:
        """Fault one in-flight handler (``repro.faults`` hook).

        Models a transient fault detected inside exception handling: the
        mechanism must abandon the in-progress handling and re-raise it
        through its normal recovery machinery, preserving architectural
        state.  Returns a short description of what was faulted, or
        ``None`` when nothing is in flight (the injection is a no-op).
        The base mechanism has no handler state, so: ``None``.
        """
        return None

    # -- autonomous activity ---------------------------------------------
    def tick(self, now: int) -> None:
        """Called at the top of every cycle."""

    def service_mem_ports(self, now: int, free_ports: int) -> int:
        """Offer leftover load/store ports; returns how many were used."""
        return 0

    def fetch_idle(self, now: int, budget: int) -> int:
        """Offer leftover fetch bandwidth (quick-start); returns used."""
        return 0

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle after ``now`` at which this mechanism may act
        *spontaneously* (via ``tick``/``service_mem_ports``/``fetch_idle``
        rather than in reaction to a core event).

        Used by the core's idle-cycle fast-forward: after a quiet cycle
        the clock may jump to the next wakeup, and this bound keeps the
        jump from skipping autonomous mechanism work.  Purely reactive
        mechanisms return a far-future sentinel; the conservative default
        returns ``now``, which disables fast-forward entirely for
        mechanisms that do not implement the hook.
        """
        return now
