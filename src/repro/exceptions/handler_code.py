"""The software DTLB miss handler (PAL code).

Mirrors the structure of the Alpha 21164 PALcode data-TLB miss handler
the paper simulates: a handful of instructions that read the faulting
virtual address from a privileged register, index the flat page table,
load the PTE (a privileged, physically-addressed load that still travels
through the caches), validity-check it, install the translation with
``tlbwr``, and return with ``reti``.

The page-fault path demonstrates the paper's *hard exception* reversion:
``hardexc`` before any instruction that permanently affects visible
machine state.  Executed by an exception thread it squashes the thread
and re-raises the exception through the traditional mechanism; executed
traditionally it is a no-op and the handler continues into fix-up code
that "pages in" the page (sets the PTE valid bit) and retries.

The handler deliberately performs **no stores** and reads **only** the
privileged VA/PTBR registers and the page table on its common path --
the structural properties Section 4.2 of the paper relies on to avoid
general-purpose cross-thread register renaming.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.memory.address import PAGE_SHIFT

#: The common-case handler: entry through ``reti`` (used for window
#: reservations and handler-length prediction).
DTLB_HANDLER_SOURCE = f"""
; Data-TLB miss handler ({PAGE_SHIFT}-bit page offset, flat page table)
dtlb_miss:
    mfpr  r1, VA          ; faulting virtual address
    mfpr  r2, PTBR        ; page table base
    srl   r3, r1, {PAGE_SHIFT}
    sll   r4, r3, 3
    add   r4, r2, r4      ; &PTE
    ld    r5, 0(r4)       ; PTE (privileged load: physical, cached)
    and   r6, r5, 1       ; valid bit
    beq   r6, r0, page_fault
    tlbwr r1, r5          ; install translation (speculative fill)
    reti
page_fault:
    hardexc               ; needs the traditional mechanism's full powers
    or    r5, r5, 1       ; "page in": mark the PTE valid
    st    r5, 0(r4)
    tlbwr r1, r5
    reti
"""


def build_dtlb_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the handler; returns (instructions, local labels)."""
    return assemble(DTLB_HANDLER_SOURCE, privileged=True)


def handler_length() -> int:
    """Common-case handler length in instructions (entry through reti)."""
    insts, labels = build_dtlb_handler()
    return labels["page_fault"]


def install_dtlb_handler(program: Program) -> int:
    """Append the handler to ``program``; returns its entry PC."""
    insts, labels = build_dtlb_handler()
    return program.append_pal(insts, labels, name="dtlb_miss")


#: Instruction-emulation handler (the paper's Section 6 generalized
#: mechanism): reads the faulting instruction's source value from a
#: privileged register, computes popcount branch-free, and writes the
#: faulting instruction's destination with ``mtdst`` -- converting the
#: excepting instruction into a completed nop and waking its consumers.
EMUL_HANDLER_SOURCE = """
emul_handler:
    mfpr  r1, EXC_SRC
    li    r2, 6148914691236517205     ; 0x5555...
    srl   r3, r1, 1
    and   r3, r3, r2
    sub   r1, r1, r3                  ; pairwise sums
    li    r2, 3689348814741910323     ; 0x3333...
    and   r3, r1, r2
    srl   r1, r1, 2
    and   r1, r1, r2
    add   r1, r1, r3                  ; nibble sums
    srl   r3, r1, 4
    add   r1, r1, r3
    li    r2, 1085102592571150095     ; 0x0f0f...
    and   r1, r1, r2
    li    r2, 72340172838076673       ; 0x0101...
    mul   r1, r1, r2
    srl   r1, r1, 56                  ; byte-sum in the top byte
    mtdst r1
    reti
"""


def build_emul_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the instruction-emulation handler."""
    return assemble(EMUL_HANDLER_SOURCE, privileged=True)


def emul_handler_length() -> int:
    """Length of the emulation handler in instructions."""
    return len(build_emul_handler()[0])


def install_emul_handler(program: Program) -> int:
    """Append the emulation handler to ``program``; returns its entry PC."""
    insts, labels = build_emul_handler()
    return program.append_pal(insts, labels, name="emul")


# ---------------------------------------------------------------------------
# repro.scenarios cause handlers (docs/SCENARIOS.md cause catalog).
# ---------------------------------------------------------------------------

#: Instruction-TLB miss handler.  Structurally the DTLB handler's twin:
#: the latched VA is the *fetch* address (pc * 4), the PTE travels the
#: same flat page table, and the fill instruction is ``itlbwr``.  The
#: page-fault arm reverts through ``hardexc`` exactly like the data side.
ITLB_MISS_HANDLER_SOURCE = f"""
; Instruction-TLB miss handler ({PAGE_SHIFT}-bit page offset, flat page table)
itlb_miss:
    mfpr  r1, VA          ; faulting fetch address
    mfpr  r2, PTBR        ; page table base
    srl   r3, r1, {PAGE_SHIFT}
    sll   r4, r3, 3
    add   r4, r2, r4      ; &PTE
    ld    r5, 0(r4)       ; PTE (privileged load: physical, cached)
    and   r6, r5, 1       ; valid bit
    beq   r6, r0, ipage_fault
    itlbwr r1, r5         ; install fetch translation (speculative fill)
    reti
ipage_fault:
    hardexc               ; needs the traditional mechanism's full powers
    or    r5, r5, 1       ; "page in": mark the PTE valid
    st    r5, 0(r4)
    itlbwr r1, r5
    reti
"""

#: Unaligned-access fixup handler: loads the aligned-down 8-byte word
#: containing the faulting address (a privileged, physically-addressed
#: load, same machinery as the PTE load) and completes the excepting
#: ``ld`` with ``mtdst`` -- returning *past* it, like emulation.
UNALIGNED_HANDLER_SOURCE = """
unaligned_handler:
    mfpr  r1, VA          ; faulting (misaligned) effective address
    li    r2, -8
    and   r1, r1, r2      ; align down to the containing word
    ld    r3, 0(r1)       ; privileged load of the aligned word
    mtdst r3
    reti
"""

#: Byte-swap emulation handler (``brev``): the classic three-step
#: SWAR bswap64, completing the excepting instruction via ``mtdst``.
BREV_HANDLER_SOURCE = """
brev_handler:
    mfpr  r1, EXC_SRC
    li    r2, 71777214294589695       ; 0x00ff00ff00ff00ff
    and   r3, r1, r2
    sll   r3, r3, 8
    srl   r1, r1, 8
    and   r1, r1, r2
    or    r1, r1, r3                  ; bytes swapped within halfwords
    li    r2, 281470681808895         ; 0x0000ffff0000ffff
    and   r3, r1, r2
    sll   r3, r3, 16
    srl   r1, r1, 16
    and   r1, r1, r2
    or    r1, r1, r3                  ; halfwords swapped within words
    sll   r3, r1, 32
    srl   r1, r1, 32
    or    r1, r1, r3                  ; words swapped
    mtdst r1
    reti
"""

#: Software-interrupt service handler (``swint``): a splitmix-style
#: 64-bit mix of the latched source operand -- the paper's "any
#: restartable exception" argument exercised with an arbitrary software
#: service routine that still completes via ``mtdst``.
SWINT_HANDLER_SOURCE = """
swint_handler:
    mfpr  r1, EXC_SRC
    li    r2, 11400714819323198485    ; 0x9e3779b97f4a7c15
    mul   r1, r1, r2
    srl   r3, r1, 29
    xor   r1, r1, r3
    mtdst r1
    reti
"""


def build_itlb_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the ITLB miss handler; returns (instructions, labels)."""
    return assemble(ITLB_MISS_HANDLER_SOURCE, privileged=True)


def itlb_handler_length() -> int:
    """Common-case ITLB handler length (entry through reti)."""
    return build_itlb_handler()[1]["ipage_fault"]


def build_unaligned_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the unaligned-access fixup handler."""
    return assemble(UNALIGNED_HANDLER_SOURCE, privileged=True)


def unaligned_handler_length() -> int:
    """Length of the unaligned fixup handler in instructions."""
    return len(build_unaligned_handler()[0])


def build_brev_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the byte-swap emulation handler."""
    return assemble(BREV_HANDLER_SOURCE, privileged=True)


def brev_handler_length() -> int:
    """Length of the byte-swap handler in instructions."""
    return len(build_brev_handler()[0])


def build_swint_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the software-interrupt service handler."""
    return assemble(SWINT_HANDLER_SOURCE, privileged=True)


def swint_handler_length() -> int:
    """Length of the software-interrupt handler in instructions."""
    return len(build_swint_handler()[0])


#: Cause name -> (builder, common-case length fn).  The restartability
#: pass and the simulator's handler-length registration both iterate
#: this catalog, so a new cause is one entry here plus its source above.
CAUSE_HANDLERS: dict[str, tuple] = {
    "dtlb_miss": (build_dtlb_handler, handler_length),
    "emul": (build_emul_handler, emul_handler_length),
    "itlb_miss": (build_itlb_handler, itlb_handler_length),
    "unaligned": (build_unaligned_handler, unaligned_handler_length),
    "brev": (build_brev_handler, brev_handler_length),
    "swint": (build_swint_handler, swint_handler_length),
}


def install_scenario_handlers(program: Program) -> dict[str, int]:
    """Append the repro.scenarios cause handlers (ITLB miss, unaligned
    fixup, byte-swap emulation, software interrupt) to ``program``."""
    for name in ("itlb_miss", "unaligned", "brev", "swint"):
        insts, labels = CAUSE_HANDLERS[name][0]()
        program.append_pal(insts, labels, name=name)
    return dict(program.pal_entries)


def install_handlers(program: Program, scenario_causes: bool = False) -> dict[str, int]:
    """Install every PAL handler; returns {name: entry PC}.

    ``scenario_causes=True`` additionally installs the repro.scenarios
    cause handlers; the default image set is byte-identical to the seed.
    """
    install_dtlb_handler(program)
    install_emul_handler(program)
    if scenario_causes:
        install_scenario_handlers(program)
    return dict(program.pal_entries)
