"""The software DTLB miss handler (PAL code).

Mirrors the structure of the Alpha 21164 PALcode data-TLB miss handler
the paper simulates: a handful of instructions that read the faulting
virtual address from a privileged register, index the flat page table,
load the PTE (a privileged, physically-addressed load that still travels
through the caches), validity-check it, install the translation with
``tlbwr``, and return with ``reti``.

The page-fault path demonstrates the paper's *hard exception* reversion:
``hardexc`` before any instruction that permanently affects visible
machine state.  Executed by an exception thread it squashes the thread
and re-raises the exception through the traditional mechanism; executed
traditionally it is a no-op and the handler continues into fix-up code
that "pages in" the page (sets the PTE valid bit) and retries.

The handler deliberately performs **no stores** and reads **only** the
privileged VA/PTBR registers and the page table on its common path --
the structural properties Section 4.2 of the paper relies on to avoid
general-purpose cross-thread register renaming.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.memory.address import PAGE_SHIFT

#: The common-case handler: entry through ``reti`` (used for window
#: reservations and handler-length prediction).
DTLB_HANDLER_SOURCE = f"""
; Data-TLB miss handler ({PAGE_SHIFT}-bit page offset, flat page table)
dtlb_miss:
    mfpr  r1, VA          ; faulting virtual address
    mfpr  r2, PTBR        ; page table base
    srl   r3, r1, {PAGE_SHIFT}
    sll   r4, r3, 3
    add   r4, r2, r4      ; &PTE
    ld    r5, 0(r4)       ; PTE (privileged load: physical, cached)
    and   r6, r5, 1       ; valid bit
    beq   r6, r0, page_fault
    tlbwr r1, r5          ; install translation (speculative fill)
    reti
page_fault:
    hardexc               ; needs the traditional mechanism's full powers
    or    r5, r5, 1       ; "page in": mark the PTE valid
    st    r5, 0(r4)
    tlbwr r1, r5
    reti
"""


def build_dtlb_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the handler; returns (instructions, local labels)."""
    return assemble(DTLB_HANDLER_SOURCE, privileged=True)


def handler_length() -> int:
    """Common-case handler length in instructions (entry through reti)."""
    insts, labels = build_dtlb_handler()
    return labels["page_fault"]


def install_dtlb_handler(program: Program) -> int:
    """Append the handler to ``program``; returns its entry PC."""
    insts, labels = build_dtlb_handler()
    return program.append_pal(insts, labels, name="dtlb_miss")


#: Instruction-emulation handler (the paper's Section 6 generalized
#: mechanism): reads the faulting instruction's source value from a
#: privileged register, computes popcount branch-free, and writes the
#: faulting instruction's destination with ``mtdst`` -- converting the
#: excepting instruction into a completed nop and waking its consumers.
EMUL_HANDLER_SOURCE = """
emul_handler:
    mfpr  r1, EXC_SRC
    li    r2, 6148914691236517205     ; 0x5555...
    srl   r3, r1, 1
    and   r3, r3, r2
    sub   r1, r1, r3                  ; pairwise sums
    li    r2, 3689348814741910323     ; 0x3333...
    and   r3, r1, r2
    srl   r1, r1, 2
    and   r1, r1, r2
    add   r1, r1, r3                  ; nibble sums
    srl   r3, r1, 4
    add   r1, r1, r3
    li    r2, 1085102592571150095     ; 0x0f0f...
    and   r1, r1, r2
    li    r2, 72340172838076673       ; 0x0101...
    mul   r1, r1, r2
    srl   r1, r1, 56                  ; byte-sum in the top byte
    mtdst r1
    reti
"""


def build_emul_handler() -> tuple[list[Instruction], dict[str, int]]:
    """Assemble the instruction-emulation handler."""
    return assemble(EMUL_HANDLER_SOURCE, privileged=True)


def emul_handler_length() -> int:
    """Length of the emulation handler in instructions."""
    return len(build_emul_handler()[0])


def install_emul_handler(program: Program) -> int:
    """Append the emulation handler to ``program``; returns its entry PC."""
    insts, labels = build_emul_handler()
    return program.append_pal(insts, labels, name="emul")


def install_handlers(program: Program) -> dict[str, int]:
    """Install every PAL handler; returns {name: entry PC}."""
    install_dtlb_handler(program)
    install_emul_handler(program)
    return dict(program.pal_entries)
