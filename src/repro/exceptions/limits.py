"""Limit-study knobs for Table 3 of the paper.

Each flag surgically removes one overhead of the multithreaded mechanism
to quantify its contribution to the gap between the multithreaded handler
and the hardware walker:

* ``no_execute_bandwidth`` -- handler instructions issue without consuming
  issue slots or functional units ("Multi w/o execute bandwidth
  overhead").
* ``no_window_overhead`` -- handler instructions occupy no window entries
  and need no reservation ("Multi w/o window overhead").
* ``no_fetch_bandwidth`` -- handler fetch and decode consume none of the
  shared front-end bandwidth ("Multi w/o fetch/decode bandwidth
  overhead").
* ``instant_fetch`` -- handler instructions appear fully decoded in the
  window the cycle after the exception spawns ("Multi w/ instant handler
  fetch/decode"), the knob the paper found dominant and then approximated
  in hardware with quick-start.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LimitKnobs:
    """Overhead-removal switches applied only to exception threads."""

    no_execute_bandwidth: bool = False
    no_window_overhead: bool = False
    no_fetch_bandwidth: bool = False
    instant_fetch: bool = False

    @property
    def any_active(self) -> bool:
        return (
            self.no_execute_bandwidth
            or self.no_window_overhead
            or self.no_fetch_bandwidth
            or self.instant_fetch
        )
