"""The traditional (trap) exception mechanism -- the paper's baseline.

On a DTLB miss the faulting instruction and everything younger are
squashed; the hardware latches the faulting VA and PC into privileged
registers, redirects fetch to the PAL handler *in the same thread*, and
raises the thread's fetch privilege.  The handler's ``tlbwr`` installs a
speculative TLB entry; ``reti``'s execution redirects fetch back to the
(unpredicted) faulting PC -- the second pipeline refill of Figure 2 --
and its retirement confirms the fill.

Also used as the fallback engine by the multithreaded mechanism (no idle
context / ``hardexc`` reversion) and by the hardware walker on page
faults, via :meth:`TraditionalMechanism.trap`.
"""

from __future__ import annotations

from repro.exceptions.base import ExceptionInstance, ExceptionMechanism
from repro.isa.instructions import Opcode
from repro.isa.registers import PrivReg
from repro.memory.page_table import pte_pfn
from repro.memory.address import vpn_of
from repro.pipeline.thread import ThreadContext
from repro.pipeline.uop import Uop


class TraditionalMechanism(ExceptionMechanism):
    """Squash-and-refetch software trap handling."""

    name = "traditional"

    def __init__(self) -> None:
        super().__init__()
        #: thread id -> in-flight traditional exception instance.
        self._active: dict[int, ExceptionInstance] = {}

    # ------------------------------------------------------------------
    def on_dtlb_miss(self, uop: Uop, va: int, vpn: int, now: int) -> None:
        """Trap: squash from the faulting instruction and refetch."""
        self.stats.misses_seen += 1
        thread = self.core.threads[uop.thread_id]
        self.trap(thread, uop, va, now)

    def trap(self, thread: ThreadContext, uop: Uop, va: int, now: int) -> None:
        """Take a traditional DTLB trap at ``uop``."""
        thread.priv_regs[PrivReg.VA] = va
        thread.priv_regs[PrivReg.EXC_PC] = uop.pc
        instance = ExceptionInstance(vpn=vpn_of(va), va=va, master_uop=None)
        self._enter_handler(thread, uop, instance, "dtlb_miss", now)

    def trap_emul(
        self, thread: ThreadContext, uop: Uop, src_value: int, now: int
    ) -> None:
        """Take a traditional software-service trap at ``uop`` (``emul``,
        ``brev``, or ``swint``; the cause string is the mnemonic).

        The hardware latches the faulting instruction's source value and
        destination register; ``reti`` returns *past* the emulated
        instruction (it never re-executes).
        """
        cause = uop.inst.op.value
        thread.priv_regs[PrivReg.EXC_SRC] = src_value
        thread.priv_regs[PrivReg.EXC_DST] = uop.inst.rd or 0
        thread.priv_regs[PrivReg.EXC_PC] = uop.pc + 1
        instance = ExceptionInstance(
            vpn=-1, va=0, master_uop=None, exc_type=cause, src_value=src_value
        )
        self._enter_handler(thread, uop, instance, cause, now)

    def trap_unaligned(
        self, thread: ThreadContext, uop: Uop, addr: int, now: int
    ) -> None:
        """Take a traditional unaligned-access trap at a user ``ld``.

        Like emulation, the handler completes the load (``mtdst`` of the
        aligned-down word) and ``reti`` returns *past* it.
        """
        thread.priv_regs[PrivReg.VA] = addr
        thread.priv_regs[PrivReg.EXC_DST] = uop.inst.rd or 0
        thread.priv_regs[PrivReg.EXC_PC] = uop.pc + 1
        instance = ExceptionInstance(
            vpn=-1, va=addr, master_uop=None, exc_type="unaligned"
        )
        self._enter_handler(thread, uop, instance, "unaligned", now)

    def trap_itlb(self, thread: ThreadContext, pc: int, now: int) -> None:
        """Take a traditional instruction-TLB miss trap at fetch ``pc``.

        Unlike the data-side traps there is no faulting uop and nothing
        to squash: the fetch produced nothing, and everything older in
        the thread is correct-path work that keeps running while the
        handler refills the ITLB.
        """
        instance = self._active.get(thread.tid)
        if instance is not None and any(u.is_handler for u in thread.rob):
            # An earlier trap's handler is still in flight (its reti has
            # executed but not retired).  Entering a new handler now
            # would tear down its instance bookkeeping; retry the fetch
            # next cycle instead.  (A *stale* wrong-path instance has no
            # handler uops left and does not block.)
            thread.fetch_stall_until = now + 1
            return
        self.stats.traps += 1
        va = pc * 4
        thread.priv_regs[PrivReg.VA] = va
        thread.priv_regs[PrivReg.EXC_PC] = pc
        instance = ExceptionInstance(
            vpn=vpn_of(va), va=va, master_uop=None, exc_type="itlb_miss"
        )
        instance.spawn_cycle = now
        self._active[thread.tid] = instance
        self._cause_count(self.core.stats.cause_taken, "itlb_miss")
        self._emit_spawn(
            instance, thread.tid, "trap", now,
            master_tid=thread.tid, master_seq=-1,
        )
        entry = self.core.pal_entries.get("itlb_miss")
        if entry is None:
            raise RuntimeError("no 'itlb_miss' handler installed in the program")
        thread.pc = entry
        thread.fetch_priv = True
        thread.fetch_stall_until = now + 1
        thread.fetch_wait_uop = None

    def _enter_handler(
        self,
        thread: ThreadContext,
        uop: Uop,
        instance: ExceptionInstance,
        handler: str,
        now: int,
    ) -> None:
        self.stats.traps += 1
        squashed = self.core.squash_from(thread, uop.seq - 1, now)
        instance.spawn_cycle = now
        self._active[thread.tid] = instance
        stats = self.core.stats
        self._cause_count(stats.cause_taken, instance.exc_type)
        self._cause_count(stats.cause_squashes, instance.exc_type, squashed)
        self._emit_spawn(
            instance, thread.tid, "trap", now,
            master_tid=thread.tid, master_seq=uop.seq,
        )
        entry = self.core.pal_entries.get(handler)
        if entry is None:
            raise RuntimeError(f"no {handler!r} handler installed in the program")
        thread.pc = entry
        thread.fetch_priv = True
        thread.fetch_stall_until = now + 1
        thread.fetch_wait_uop = None

    # ------------------------------------------------------------------
    def on_tlbwr(self, uop: Uop, va: int, pte: int, now: int) -> None:
        """Install a speculative fill tagged with the trap instance."""
        thread = self.core.threads[uop.thread_id]
        instance = self._active.get(thread.tid)
        if instance is None:
            return
        uop.exc_instance = instance
        tlb = self.core.itlb if uop.inst.op is Opcode.ITLBWR else self.core.dtlb
        tlb.fill(
            vpn_of(va), pte_pfn(pte), speculative=True, producer=instance.id
        )
        instance.filled = True
        instance.fill_cycle = now

    def on_hardexc(self, uop: Uop, now: int) -> None:
        # Executed traditionally the handler already has full powers:
        # hardexc is a no-op and the fix-up path simply continues.
        return

    def on_reti_executed(self, uop: Uop, now: int) -> None:
        """Redirect fetch to the latched (unpredicted) return PC."""
        thread = self.core.threads[uop.thread_id]
        uop.exc_instance = self._active.get(thread.tid)
        # Redirect fetch to the (unpredicted) faulting PC.
        thread.pc = thread.priv_regs[PrivReg.EXC_PC]
        thread.fetch_priv = False
        thread.fetch_stall_until = now + 1
        if thread.fetch_wait_uop is uop:
            thread.fetch_wait_uop = None

    def on_emulation(self, uop: Uop, src_value: int, now: int) -> None:
        """Software-service exception: trap to the cause's handler."""
        thread = self.core.threads[uop.thread_id]
        self.trap_emul(thread, uop, src_value, now)

    def on_itlb_miss(self, thread: ThreadContext, pc: int, now: int) -> None:
        """Trap: redirect fetch into the ITLB refill handler."""
        self.stats.misses_seen += 1
        self.trap_itlb(thread, pc, now)

    def on_unaligned(self, uop: Uop, addr: int, now: int) -> None:
        """Trap: the fixup handler completes the misaligned load."""
        thread = self.core.threads[uop.thread_id]
        self.trap_unaligned(thread, uop, addr, now)

    def on_reti_retired(self, uop: Uop, now: int) -> None:
        """Confirm the fill (or count the emulation) architecturally."""
        thread = self.core.threads[uop.thread_id]
        instance = uop.exc_instance or self._active.get(thread.tid)
        if instance is not None:
            if instance.exc_type == "dtlb_miss":
                self.core.dtlb.confirm(instance.id)
                self.stats.committed_fills += 1
            elif instance.exc_type == "itlb_miss":
                self.core.itlb.confirm(instance.id)
                self.stats.committed_fills += 1
            else:
                self.stats.emulations += 1
            if instance.spawn_cycle >= 0:
                self._cause_count(
                    self.core.stats.cause_handler_cycles,
                    instance.exc_type,
                    now - instance.spawn_cycle,
                )
            if self._active.get(thread.tid) is instance:
                del self._active[thread.tid]
            self._emit_splice(instance, thread.tid, "trap", now)

    def next_event_cycle(self, now: int) -> int:
        """Purely reactive: traps, fills, and redirects all happen in
        response to core events, never on a timer."""
        return 1 << 60

    def inject_handler_fault(self, now: int) -> str | None:
        """Fault an in-flight trap handler: squash it and refetch it.

        The recovery reuses the handler-internal-misprediction path the
        trap machinery already supports (see :meth:`on_uop_squashed`):
        the handler's in-flight uops are squashed, any speculative fill
        rolls back, and fetch restarts at the handler entry with the
        trap instance still active, so ``tlbwr``/``reti`` re-attach to
        it.  The latched privileged registers (VA, EXC_PC, EXC_SRC) are
        architectural and survive, making the re-execution exact.

        Injection requires the ROB tail to be a *pure* handler region
        whose ``reti`` has not executed yet:

        * Back-to-back traps leave remnants of an earlier handler (its
          executed ``reti`` plus refetched user uops) ahead of the
          active handler; squashing from the oldest handler uop would
          discard user work and replay it against the newer trap's
          ``EXC_PC``.  Requiring every uop from the first handler uop to
          the ROB tail to be a handler uop rejects that shape.
        * Even an all-handler tail can span *two* trap instances: the
          old handler's executed ``reti`` followed by the new trap's
          handler (the refetched user uops between them having been
          squashed by the new trap).  Restarting from the old handler
          would rename its ``mtdst`` against the *new* trap's latched
          ``EXC_DST``, silently dropping the old emulation's register
          write.  The active instance's handler region therefore starts
          *after* the last executed ``reti``; if nothing follows it,
          the handler has effectively completed and injection is
          skipped.

        Each trap instance is faulted at most once (a transient
        ``fault_injected`` marker): with a short enough injection
        period the restarted handler would otherwise be re-faulted
        before its ``reti`` can ever retire, livelocking the machine.
        """
        core = self.core
        for tid in sorted(self._active):
            instance = self._active[tid]
            if getattr(instance, "fault_injected", False):
                continue  # once per instance: guarantees forward progress
            thread = core.threads[tid]
            rob = list(thread.rob)
            start = next(
                (i for i, u in enumerate(rob) if u.is_handler), None
            )
            if start is None:
                continue  # stale instance (wrong-path trap): no handler
            if any(not u.is_handler for u in rob[start:]):
                continue  # previous trap's remnants ahead of the handler
            for index in range(start, len(rob)):
                uop = rob[index]
                if uop.inst.op is Opcode.RETI and uop.issued:
                    start = index + 1  # older handler: redirect already done
            if start >= len(rob):
                continue  # active handler finished executing: nothing to fault
            instance.fault_injected = True
            boundary = rob[start]
            core.squash_from(thread, boundary.seq - 1, now)
            entry = core.pal_entries[instance.exc_type]
            thread.pc = entry
            thread.fetch_priv = True
            thread.fetch_stall_until = now + 1
            thread.fetch_wait_uop = None
            thread.fetch_done = False
            thread.overfetch_after_reti = False
            return f"re-trapped handler on t{tid} ({instance.exc_type})"
        return None

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        state = super().snapshot_state(ctx)
        state["active"] = [
            [tid, ctx.instance_ref(self._active[tid])]
            for tid in sorted(self._active)
        ]
        return state

    def restore_state(self, state: dict, ctx) -> None:
        super().restore_state(state, ctx)
        self._active = {
            tid: ctx.resolve_instance(ref) for tid, ref in state["active"]
        }

    def drain(self, now: int) -> None:
        """Forget in-flight traps; the core has already squashed their
        handler uops and rewound each thread to its resume PC."""
        self._active.clear()

    def drain_resume_pc(self, thread: ThreadContext) -> int:
        pc = thread.priv_regs[PrivReg.EXC_PC]
        instance = self._active.get(thread.tid)
        if instance is not None and instance.exc_type in (
            "emul", "brev", "swint", "unaligned"
        ):
            # These traps latched pc+1 (reti skips the serviced
            # instruction), but the handler's mtdst may not have retired;
            # re-executing the serviced instruction is idempotent and safe.
            return pc - 1
        return pc

    # ------------------------------------------------------------------
    def on_uop_squashed(self, uop: Uop, now: int) -> None:
        # A squashed tlbwr's speculative fill is rolled back.  The trap
        # instance itself stays active: a handler-internal misprediction
        # (e.g. the valid-bit check) refetches the correct handler path,
        # whose tlbwr must still find its instance.  If the whole trap was
        # on the wrong path the stale instance is harmless -- the next
        # trap overwrites it and reti attaches its instance at execute.
        op = uop.inst.op
        if uop.exc_instance is not None:
            if op is Opcode.TLBWR:
                self.core.dtlb.rollback(uop.exc_instance.id)
            elif op is Opcode.ITLBWR:
                self.core.itlb.rollback(uop.exc_instance.id)
