"""Quick-start: prefetched handlers in idle fetch buffers (Section 5.4).

The multithreaded mechanism's dominant remaining overhead is handler
fetch/decode latency (Table 3).  Quick-start attacks the fetch half:
while a thread context is idle, the machine predicts the next exception
type, prefetches that handler with *spare* fetch bandwidth, and parks the
fetched-but-undecoded instructions in the idle thread's otherwise-unused
fetch buffer.  When an exception spawns onto that context the handler
image is already past fetch: it pays only decode + schedule + register
read.  If the exception arrives before the prefetch finished, whatever
was prefetched is used and the tail is fetched normally (the paper:
"the instructions have not always been prefetched").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions.multithreaded import MultithreadedMechanism
from repro.exceptions.predictors import ExceptionTypePredictor
from repro.isa.instructions import Opcode
from repro.pipeline.thread import ThreadContext, ThreadState
from repro.pipeline.uop import Uop


@dataclass
class _PrefetchEntry:
    pc: int
    ready_cycle: int


class QuickStartMechanism(MultithreadedMechanism):
    """Multithreaded exception handling with handler prefetch."""

    name = "quickstart"

    def __init__(self) -> None:
        super().__init__()
        self.type_predictor = ExceptionTypePredictor()
        #: tid -> prefetched handler image (in handler order).
        self._images: dict[int, list[_PrefetchEntry]] = {}
        #: tid -> next handler offset to prefetch (None = image complete).
        self._cursor: dict[int, int] = {}
        #: tid -> exception type the prefetched image belongs to.
        self._image_type: dict[int, str] = {}

    # ------------------------------------------------------------------
    def fetch_idle(self, now: int, budget: int) -> int:
        """Spend leftover fetch bandwidth prefetching into idle buffers."""
        core = self.core
        predicted = self.type_predictor.predict() or "dtlb_miss"
        entry = core.pal_entries.get(predicted)
        if entry is None:
            return 0
        length = core.handler_lengths.get(predicted, core.handler_length)
        used = 0
        for thread in core.threads:
            if used >= budget:
                break
            if thread.state is not ThreadState.IDLE:
                continue
            if self._image_type.get(thread.tid) not in (None, predicted):
                # The prediction changed: restart the image.
                self._images[thread.tid] = []
                self._cursor[thread.tid] = 0
            self._image_type[thread.tid] = predicted
            cursor = self._cursor.get(thread.tid, 0)
            if cursor >= length:
                continue
            image = self._images.setdefault(thread.tid, [])
            while used < budget and cursor < length:
                pc = entry + cursor
                # Prefetch goes through the I-cache like any fetch.
                core.hierarchy.ifetch(pc * 4, now)
                image.append(
                    _PrefetchEntry(pc=pc, ready_cycle=now + core.config.fetch_latency)
                )
                cursor += 1
                used += 1
            self._cursor[thread.tid] = cursor
        return used

    # ------------------------------------------------------------------
    def _start_frontend(self, thread: ThreadContext, now: int) -> None:
        """Serve the handler from the prefetched image where possible."""
        core = self.core
        exc_type = (
            thread.exc_instance.exc_type if thread.exc_instance else "dtlb_miss"
        )
        self.type_predictor.verify(exc_type)
        self.type_predictor.record(exc_type)
        image = self._images.pop(thread.tid, [])
        image_type = self._image_type.pop(thread.tid, None)
        self._cursor.pop(thread.tid, None)
        if image and image_type != exc_type:
            # Wrong handler prefetched: the image is useless.
            self.stats.quickstart_wrong_type += 1
            image = []
        usable = [e for e in image if e.ready_cycle <= now]
        # Entries still in the fetch pipe arrive on schedule; use them too.
        in_flight = [e for e in image if e.ready_cycle > now]
        served = usable + in_flight

        if not served:
            super()._start_frontend(thread, now)
            return
        length = core.handler_lengths.get(exc_type, core.handler_length)
        if len(served) >= length:
            self.stats.quickstart_hits += 1
        else:
            self.stats.quickstart_partial += 1

        exc_id = thread.exc_instance.id if thread.exc_instance else None
        bus = core.listeners
        saw_reti = False
        for entry in served:
            inst = thread.program.fetch(entry.pc)
            uop = Uop(core.alloc_seq(), thread.tid, entry.pc, inst)
            uop.fetch_cycle = now
            uop.avail_cycle = max(now, entry.ready_cycle)
            uop.is_handler = True
            uop.quickstarted = True
            if inst.is_branch:
                pred = core.bpu.predict(entry.pc, inst)
                uop.checkpoint = pred.checkpoint
                uop.pred_taken = pred.taken
                uop.pred_target = pred.target
            thread.rob.append(uop)
            thread.fetch_buffer.append(uop)
            core.stats.fetched += 1
            if bus is not None:
                bus.fetch(now, thread.tid, uop.seq, entry.pc, inst.op.value, True)
            if inst.op is Opcode.RETI:
                saw_reti = True
        if saw_reti:
            thread.fetch_done = True
            thread.fetch_stall_until = 1 << 60
        else:
            # Partial image: fetch the rest of the handler normally.
            thread.pc = self._handler_entry(thread) + len(served)
            thread.fetch_stall_until = now + 1

    def _thread_freed(self, thread: ThreadContext, now: int) -> None:
        """Restart prefetch for a context returning to the idle pool."""
        self._images[thread.tid] = []
        self._cursor[thread.tid] = 0
        self._image_type.pop(thread.tid, None)

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        state = super().snapshot_state(ctx)
        state["type_predictor"] = self.type_predictor.snapshot_state(ctx)
        state["images"] = [
            [tid, [[e.pc, e.ready_cycle] for e in image]]
            for tid, image in sorted(self._images.items())
        ]
        state["cursor"] = [[k, v] for k, v in sorted(self._cursor.items())]
        state["image_type"] = [
            [k, v] for k, v in sorted(self._image_type.items())
        ]
        return state

    def restore_state(self, state: dict, ctx) -> None:
        super().restore_state(state, ctx)
        self.type_predictor.restore_state(state["type_predictor"], ctx)
        self._images = {
            tid: [_PrefetchEntry(pc=pc, ready_cycle=rc) for pc, rc in image]
            for tid, image in state["images"]
        }
        self._cursor = {k: v for k, v in state["cursor"]}
        self._image_type = {k: v for k, v in state["image_type"]}

    def drain(self, now: int) -> None:
        """Drop prefetched handler images along with in-flight exception
        work; the type predictor's learned history survives."""
        super().drain(now)
        self._images.clear()
        self._cursor.clear()
        self._image_type.clear()
