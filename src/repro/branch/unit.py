"""The combined front-end prediction unit.

One object per core (shared by all SMT threads, as in the paper's Table 1:
"All threads share a single ... branch predictor").  It owns:

* the YAGS direction predictor plus a *speculative* global history
  register updated at fetch,
* perfect direct-branch targets (the static instruction carries them),
* the cascaded indirect predictor plus a speculative path history,
* the checkpointing RAS.

Every predicted branch returns a :class:`BranchCheckpoint` capturing the
speculative state *before* the branch's own effect; on a misprediction the
unit restores the checkpoint and re-applies the branch's now-known actual
effect, repairing history and RAS for the correct path.

``reti`` is returned as *unpredictable*: the front end must stall until it
executes (the paper's simulator has no RAS-like mechanism for exception
returns, giving traditional trap handling its second pipeline refill).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.branch.cascaded import CascadedIndirectPredictor
from repro.branch.ras import RASCheckpoint, ReturnAddressStack
from repro.branch.yags import YAGSPredictor
from repro.isa.instructions import Instruction, Opcode


@dataclass(frozen=True)
class BranchCheckpoint:
    """Front-end speculative state before a branch's own effect."""

    ghr: int
    path: int
    ras: RASCheckpoint


@dataclass
class FetchPrediction:
    """What fetch learns about a branch: direction, target, checkpoint.

    ``target is None`` means the branch is unpredictable (``reti``) and
    fetch must stall until it executes.
    """

    taken: bool
    target: int | None
    checkpoint: BranchCheckpoint


@dataclass
class BranchStats:
    cond_predictions: int = 0
    cond_mispredictions: int = 0
    indirect_predictions: int = 0
    indirect_mispredictions: int = 0
    return_predictions: int = 0
    return_mispredictions: int = 0


class BranchPredictionUnit:
    """Shared front-end predictors with checkpoint/restore."""

    def __init__(
        self,
        yags: YAGSPredictor | None = None,
        indirect: CascadedIndirectPredictor | None = None,
        ras_entries: int = 64,
    ) -> None:
        self.yags = yags or YAGSPredictor()
        self.indirect = indirect or CascadedIndirectPredictor()
        self.ras = ReturnAddressStack(ras_entries)
        self.ghr = 0
        self.path = 0
        self.stats = BranchStats()

    # ------------------------------------------------------------------
    def _checkpoint(self) -> BranchCheckpoint:
        return BranchCheckpoint(ghr=self.ghr, path=self.path, ras=self.ras.checkpoint())

    def _shift_ghr(self, taken: bool) -> None:
        self.ghr = ((self.ghr << 1) | (1 if taken else 0)) & self.yags.history_mask

    def predict(self, pc: int, inst: Instruction) -> FetchPrediction:
        """Predict the branch at ``pc`` and advance speculative state."""
        cp = self._checkpoint()
        op = inst.op
        if inst.is_cond_branch:
            taken = self.yags.predict(pc, self.ghr)
            self._shift_ghr(taken)
            target = inst.target if taken else pc + 1
            return FetchPrediction(taken=taken, target=target, checkpoint=cp)
        if op in (Opcode.JMP, Opcode.CALL):
            if op is Opcode.CALL:
                self.ras.push(pc + 1)
            return FetchPrediction(taken=True, target=inst.target, checkpoint=cp)
        if op in (Opcode.CALLI, Opcode.JMPI):
            target = self.indirect.predict(pc, self.path)
            self.path = self.indirect.fold_path(self.path, target)
            if op is Opcode.CALLI:
                self.ras.push(pc + 1)
            return FetchPrediction(taken=True, target=target, checkpoint=cp)
        if op is Opcode.RET:
            target = self.ras.pop()
            return FetchPrediction(taken=True, target=target, checkpoint=cp)
        if op is Opcode.RETI:
            # Exception returns are deliberately unpredicted.
            return FetchPrediction(taken=True, target=None, checkpoint=cp)
        raise ValueError(f"not a branch: {inst}")

    # ------------------------------------------------------------------
    def repair(
        self,
        pc: int,
        inst: Instruction,
        cp: BranchCheckpoint,
        actual_taken: bool,
        actual_target: int,
    ) -> None:
        """Restore speculative state after a misprediction.

        Rolls back to ``cp`` then re-applies the branch's *actual*
        outcome, leaving the front end exactly as if the branch had been
        predicted correctly.
        """
        self.ghr = cp.ghr
        self.path = cp.path
        self.ras.restore(cp.ras)
        op = inst.op
        if inst.is_cond_branch:
            self._shift_ghr(actual_taken)
        elif op in (Opcode.CALLI, Opcode.JMPI):
            self.path = self.indirect.fold_path(self.path, actual_target)
            if op is Opcode.CALLI:
                self.ras.push(pc + 1)
        elif op is Opcode.CALL:
            self.ras.push(pc + 1)
        elif op is Opcode.RET:
            self.ras.pop()

    def restore_checkpoint(self, cp: BranchCheckpoint) -> None:
        """Roll speculative state straight back to ``cp``.

        Used for non-mispredict squashes (the multithreaded mechanism's
        deadlock-avoidance tail squash) where the squashed instructions
        will simply be refetched: no branch outcome is re-applied.
        """
        self.ghr = cp.ghr
        self.path = cp.path
        self.ras.restore(cp.ras)

    # ------------------------------------------------------------------
    def train(
        self,
        pc: int,
        inst: Instruction,
        cp: BranchCheckpoint,
        actual_taken: bool,
        actual_target: int,
        pred_taken: bool,
        pred_target: int | None,
    ) -> None:
        """Update predictor tables at retirement (clean training)."""
        op = inst.op
        if inst.is_cond_branch:
            self.stats.cond_predictions += 1
            if actual_taken != pred_taken:
                self.stats.cond_mispredictions += 1
            self.yags.update(pc, cp.ghr, actual_taken, pred_taken)
        elif op in (Opcode.CALLI, Opcode.JMPI):
            self.stats.indirect_predictions += 1
            if actual_target != pred_target:
                self.stats.indirect_mispredictions += 1
            self.indirect.update(pc, cp.path, actual_target, pred_target or 0)
        elif op is Opcode.RET:
            self.stats.return_predictions += 1
            if actual_target != pred_target:
                self.stats.return_mispredictions += 1

    # -- checkpoint protocol --------------------------------------------
    def snapshot_state(self, ctx) -> dict:
        return {
            "yags": self.yags.snapshot_state(ctx),
            "indirect": self.indirect.snapshot_state(ctx),
            "ras": self.ras.snapshot_state(ctx),
            "ghr": self.ghr,
            "path": self.path,
            "stats": dataclasses.asdict(self.stats),
        }

    def restore_state(self, state: dict, ctx) -> None:
        self.yags.restore_state(state["yags"], ctx)
        self.indirect.restore_state(state["indirect"], ctx)
        self.ras.restore_state(state["ras"], ctx)
        self.ghr = state["ghr"]
        self.path = state["path"]
        for f in dataclasses.fields(self.stats):
            setattr(self.stats, f.name, state["stats"][f.name])
