"""Branch prediction: YAGS, cascaded indirect, checkpointing RAS.

Matches the Table 1 front end of the paper:

* conditional directions from a YAGS predictor (2^14-entry choice table,
  2^12-entry exception caches with 6-bit tags),
* *perfect* targets for direct branches (the static instruction carries
  its target, standing in for a perfect BTB),
* indirect targets from a two-stage cascaded predictor (2^8 first stage,
  2^10 tagged second stage),
* returns from a 64-entry checkpointing return address stack,
* exception returns (``reti``) deliberately *unpredicted* -- the paper's
  simulator has no RAS-like mechanism for them, which is what produces
  the second pipeline refill in Figure 2.
"""

from repro.branch.cascaded import CascadedIndirectPredictor
from repro.branch.ras import RASCheckpoint, ReturnAddressStack
from repro.branch.unit import BranchCheckpoint, BranchPredictionUnit, BranchStats
from repro.branch.yags import YAGSPredictor

__all__ = [
    "CascadedIndirectPredictor",
    "RASCheckpoint",
    "ReturnAddressStack",
    "BranchCheckpoint",
    "BranchPredictionUnit",
    "BranchStats",
    "YAGSPredictor",
]
