"""Checkpointing return address stack (Jourdan et al. [10] in the paper).

A circular 64-entry stack.  Speculative pushes/pops happen at fetch; a
*checkpoint* taken at every fetched branch records the top-of-stack
pointer **and** the top entry's value, which is enough to undo any
sequence of wrong-path pushes and pops (a wrong-path push may have
overwritten the entry the correct path still needs -- saving the value
repairs exactly that case).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RASCheckpoint:
    """State needed to restore the RAS across a squash."""

    tos: int
    top_value: int


class ReturnAddressStack:
    """Circular speculative return-address stack with checkpoint repair."""

    def __init__(self, entries: int = 64) -> None:
        if entries <= 0:
            raise ValueError("RAS needs at least one entry")
        self.size = entries
        self._stack = [0] * entries
        self._tos = 0  # monotonically increasing; index = tos % size
        self.pushes = 0
        self.pops = 0

    def push(self, return_pc: int) -> None:
        """Speculatively push a return address (at fetch of a call)."""
        self._tos += 1
        self._stack[self._tos % self.size] = return_pc
        self.pushes += 1

    def pop(self) -> int:
        """Speculatively pop the predicted return target (at fetch of ret)."""
        value = self._stack[self._tos % self.size]
        self._tos -= 1
        self.pops += 1
        return value

    def peek(self) -> int:
        """Top value without popping."""
        return self._stack[self._tos % self.size]

    def checkpoint(self) -> RASCheckpoint:
        """Capture (pointer, top value) -- taken before a branch's own effect."""
        return RASCheckpoint(tos=self._tos, top_value=self._stack[self._tos % self.size])

    def restore(self, cp: RASCheckpoint) -> None:
        """Undo all speculative activity after ``cp`` was taken."""
        self._tos = cp.tos
        self._stack[self._tos % self.size] = cp.top_value

    # -- checkpoint protocol --------------------------------------------
    #: ``size`` is configuration (fixed 64-entry sizing).
    _SNAPSHOT_TRANSIENT = ("size",)

    def snapshot_state(self, ctx) -> dict:
        return {
            "stack": list(self._stack),
            "tos": self._tos,
            "pushes": self.pushes,
            "pops": self.pops,
        }

    def restore_state(self, state: dict, ctx) -> None:
        if len(state["stack"]) != self.size:
            raise ValueError("RAS size mismatch")
        self._stack = list(state["stack"])
        self._tos = state["tos"]
        self.pushes = state["pushes"]
        self.pops = state["pops"]
