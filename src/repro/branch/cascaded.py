"""Cascaded indirect branch target predictor (Driesen & Hölzle, MICRO-31).

Two stages:

* **Stage 1** -- a small untagged, PC-indexed table holding each indirect
  branch's last target (a classic BTB-style predictor; 2^8 entries per
  the paper's Table 1).
* **Stage 2** -- a larger tagged table (2^10 entries) indexed by PC xor
  path history.  The *leaky filter* allocation rule inserts into stage 2
  only when stage 1 mispredicted, so monomorphic branches never consume
  second-stage space.

Prediction prefers a tag-matching stage-2 entry, falling back to stage 1.
Path history is a shift register of low target bits of recent indirect
branches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _Stage2Entry:
    tag: int
    target: int


class CascadedIndirectPredictor:
    """Two-stage cascaded predictor with leaky-filter allocation."""

    def __init__(
        self,
        stage1_bits: int = 8,
        stage2_bits: int = 10,
        tag_bits: int = 8,
        path_bits: int = 12,
    ) -> None:
        self.stage1_size = 1 << stage1_bits
        self.stage2_size = 1 << stage2_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.path_mask = (1 << path_bits) - 1
        self.stage1 = [0] * self.stage1_size
        self.stage2: list[_Stage2Entry | None] = [None] * self.stage2_size
        self.predictions = 0
        self.mispredictions = 0

    def _s1_index(self, pc: int) -> int:
        return pc % self.stage1_size

    def _s2_index(self, pc: int, path: int) -> int:
        return (pc ^ (path & self.path_mask)) % self.stage2_size

    def _tag(self, pc: int) -> int:
        return pc & self.tag_mask

    def predict(self, pc: int, path: int) -> int:
        """Predicted target of the indirect branch at ``pc``."""
        self.predictions += 1
        entry = self.stage2[self._s2_index(pc, path)]
        if entry is not None and entry.tag == self._tag(pc):
            return entry.target
        return self.stage1[self._s1_index(pc)]

    def update(self, pc: int, path: int, target: int, predicted: int) -> None:
        """Train on the resolved target."""
        if target != predicted:
            self.mispredictions += 1
        s1_idx = self._s1_index(pc)
        stage1_correct = self.stage1[s1_idx] == target
        s2_idx = self._s2_index(pc, path)
        entry = self.stage2[s2_idx]
        tag = self._tag(pc)
        if entry is not None and entry.tag == tag:
            entry.target = target
        elif not stage1_correct:
            # Leaky filter: only polymorphic branches earn stage-2 entries.
            self.stage2[s2_idx] = _Stage2Entry(tag=tag, target=target)
        self.stage1[s1_idx] = target

    @staticmethod
    def fold_path(path: int, target: int, path_bits: int = 12) -> int:
        """Shift a resolved indirect target into the path history."""
        return ((path << 2) ^ (target & 0x3F)) & ((1 << path_bits) - 1)

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    # -- checkpoint protocol --------------------------------------------
    #: Geometry fields are configuration (fixed Table-1 sizing).
    _SNAPSHOT_TRANSIENT = ("stage1_size", "stage2_size", "tag_mask", "path_mask")

    def snapshot_state(self, ctx) -> dict:
        return {
            "stage1": list(self.stage1),
            "stage2": [
                [idx, entry.tag, entry.target]
                for idx, entry in enumerate(self.stage2)
                if entry is not None
            ],
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def restore_state(self, state: dict, ctx) -> None:
        if len(state["stage1"]) != self.stage1_size:
            raise ValueError("cascaded stage-1 size mismatch")
        self.stage1 = list(state["stage1"])
        stage2: list[_Stage2Entry | None] = [None] * self.stage2_size
        for idx, tag, target in state["stage2"]:
            stage2[idx] = _Stage2Entry(tag=tag, target=target)
        self.stage2 = stage2
        self.predictions = state["predictions"]
        self.mispredictions = state["mispredictions"]
