"""YAGS conditional branch predictor (Eden & Mudge, MICRO-31 1998).

YAGS ("Yet Another Global Scheme") keeps a PC-indexed *choice* table of
2-bit counters giving each branch's bias, plus two small tagged caches
recording only the *exceptions* to that bias:

* the **NT-cache** holds cases where a taken-biased branch goes not-taken,
* the **T-cache** holds cases where a not-taken-biased branch goes taken.

Both caches are indexed by PC xor global history and tagged with low PC
bits.  On a prediction, the cache on the opposite side of the bias is
consulted; a tag hit overrides the bias with the cached 2-bit counter.

Sizing follows the paper's Table 1: a 2^14-entry choice table and
2^12-entry exception caches with 6-bit tags.
"""

from __future__ import annotations

from dataclasses import dataclass


def _counter_up(value: int) -> int:
    return min(3, value + 1)


def _counter_down(value: int) -> int:
    return max(0, value - 1)


@dataclass
class _CacheEntry:
    tag: int
    counter: int


class YAGSPredictor:
    """YAGS direction predictor with a shared global history register."""

    def __init__(
        self,
        choice_bits: int = 14,
        cache_bits: int = 12,
        tag_bits: int = 6,
        history_bits: int = 12,
    ) -> None:
        self.choice_size = 1 << choice_bits
        self.cache_size = 1 << cache_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        # Choice counters start weakly not-taken: a cold predictor must
        # not send handler fault-check branches down their taken path
        # (loops learn their bias after a single misprediction anyway).
        self.choice = [1] * self.choice_size
        self.t_cache: list[_CacheEntry | None] = [None] * self.cache_size
        self.nt_cache: list[_CacheEntry | None] = [None] * self.cache_size
        self.predictions = 0
        self.mispredictions = 0

    def _choice_index(self, pc: int) -> int:
        return pc % self.choice_size

    def _cache_index(self, pc: int, history: int) -> int:
        return (pc ^ (history & self.history_mask)) % self.cache_size

    def _tag(self, pc: int) -> int:
        return pc & self.tag_mask

    def predict(self, pc: int, history: int) -> bool:
        """Predicted direction of the branch at ``pc`` under ``history``."""
        self.predictions += 1
        bias_taken = self.choice[self._choice_index(pc)] >= 2
        cache = self.nt_cache if bias_taken else self.t_cache
        entry = cache[self._cache_index(pc, history)]
        if entry is not None and entry.tag == self._tag(pc):
            return entry.counter >= 2
        return bias_taken

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        """Train on the resolved outcome.

        Follows the YAGS update rule: the consulted exception-cache entry
        (on a tag hit) trains toward the outcome; a new exception entry is
        allocated when the bias mispredicts; the choice counter trains
        toward the outcome *except* when the exception cache correctly
        overrode a wrong bias (preserving the useful bias).
        """
        if taken != predicted:
            self.mispredictions += 1
        choice_idx = self._choice_index(pc)
        bias_taken = self.choice[choice_idx] >= 2
        cache = self.nt_cache if bias_taken else self.t_cache
        cache_idx = self._cache_index(pc, history)
        entry = cache[cache_idx]
        tag = self._tag(pc)
        hit = entry is not None and entry.tag == tag

        if hit:
            entry.counter = _counter_up(entry.counter) if taken else _counter_down(
                entry.counter
            )
        elif taken != bias_taken:
            # The bias failed and no exception entry existed: allocate one.
            cache[cache_idx] = _CacheEntry(tag=tag, counter=2 if taken else 1)

        cache_correct = hit and (entry.counter >= 2) == taken
        bias_correct = bias_taken == taken
        if not (cache_correct and not bias_correct):
            self.choice[choice_idx] = (
                _counter_up(self.choice[choice_idx])
                if taken
                else _counter_down(self.choice[choice_idx])
            )

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    # -- checkpoint protocol --------------------------------------------
    #: Geometry fields are configuration (fixed Table-1 sizing).
    _SNAPSHOT_TRANSIENT = (
        "choice_size", "cache_size", "tag_mask", "history_bits",
        "history_mask",
    )

    @staticmethod
    def _encode_cache(cache: list) -> list:
        return [
            [idx, entry.tag, entry.counter]
            for idx, entry in enumerate(cache)
            if entry is not None
        ]

    def _decode_cache(self, encoded: list) -> list:
        cache: list[_CacheEntry | None] = [None] * self.cache_size
        for idx, tag, counter in encoded:
            cache[idx] = _CacheEntry(tag=tag, counter=counter)
        return cache

    def snapshot_state(self, ctx) -> dict:
        return {
            "choice": list(self.choice),
            "t_cache": self._encode_cache(self.t_cache),
            "nt_cache": self._encode_cache(self.nt_cache),
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def restore_state(self, state: dict, ctx) -> None:
        if len(state["choice"]) != self.choice_size:
            raise ValueError("YAGS choice-table size mismatch")
        self.choice = list(state["choice"])
        self.t_cache = self._decode_cache(state["t_cache"])
        self.nt_cache = self._decode_cache(state["nt_cache"])
        self.predictions = state["predictions"]
        self.mispredictions = state["mispredictions"]
