"""Table 3: limit studies of the multithreaded overheads."""

from benchmarks.conftest import run_once
from repro.experiments import table3_limits


def test_table3_limit_studies(benchmark, settings):
    result = run_once(benchmark, table3_limits.run, settings)
    print()
    width = max(len(label) for label in result.labels())
    for label in result.labels():
        print(f"{label:{width}s}  {result.average_penalty(label):8.1f}")

    trad = result.average_penalty("Traditional Software")
    multi = result.average_penalty("Multithreaded")
    no_exec = result.average_penalty("Multi w/o execute bandwidth overhead")
    no_window = result.average_penalty("Multi w/o window overhead")
    no_fetch = result.average_penalty("Multi w/o fetch/decode bandwidth overhead")
    instant = result.average_penalty("Multi w/ instant handler fetch/decode")
    hardware = result.average_penalty("Hardware TLB miss handler")

    # Paper shape: traditional worst, hardware best, multithreaded in
    # between; the bandwidth knobs are small, instant fetch is the big one.
    assert trad > multi > hardware
    assert instant < multi
    big_knob = multi - instant
    for small in (no_exec, no_window, no_fetch):
        assert multi - small <= big_knob + 0.5
    # Instant fetch recovers a substantial share of the hw gap.
    assert (multi - instant) > 0.3 * (multi - hardware)
