#!/bin/sh
# Regenerate BENCH_engine.json from the repo root.
set -e
cd "$(dirname "$0")/../.."
PYTHONPATH=src python -m repro.sim.perfbench "$@"
