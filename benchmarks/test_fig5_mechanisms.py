"""Figure 5: traditional vs multithreaded(1/3) vs hardware."""

from benchmarks.conftest import run_once
from repro.experiments import fig5_mechanisms


def test_fig5_mechanism_comparison(benchmark, settings):
    result = run_once(benchmark, fig5_mechanisms.run, settings)
    print()
    print(result.format_table())

    trad = result.average_penalty("traditional")
    mt1 = result.average_penalty("multithreaded(1)")
    mt3 = result.average_penalty("multithreaded(3)")
    hw = result.average_penalty("hardware")
    print(f"\naverages: trad={trad:.1f} mt(1)={mt1:.1f} mt(3)={mt3:.1f} "
          f"hw={hw:.1f}  (paper: 22.7 / 11.7 / 11.0 / 7.3)")

    # The paper's headline shapes.
    assert hw < mt3 <= mt1 * 1.1 < trad, "mechanism ordering broken"
    # Multithreading roughly halves the traditional penalty.
    assert 1.4 < trad / mt1 < 3.0
    # Extra idle threads help only modestly.
    assert mt1 - mt3 < 0.35 * mt1

    # Per-benchmark ordering holds too (traditional worst everywhere).
    for bench in settings.benchmarks:
        t = result.cell(bench, "traditional").penalty_per_miss
        m = result.cell(bench, "multithreaded(1)").penalty_per_miss
        assert t > m, bench
