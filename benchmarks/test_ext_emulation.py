"""Extension benchmark: the Section 6 generalized mechanism.

The paper's evaluation covers only TLB misses; Section 6 sketches how
the mechanism generalizes to exceptions that need register access, such
as emulated instructions.  This harness measures that: a kernel with a
software-emulated ``emul`` (popcount) instruction in its hot loop, under
each mechanism.  There is no hardware fast path for emulation, so the
comparison is traditional vs multithreaded vs quick-start -- and the
multithreaded advantage is *larger* than for TLB misses because
emulation handlers run more often per instruction.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import Settings
from repro.sim.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.workloads.builder import DEFAULT_BASE, LCG_ADD, LCG_MUL, make_program

SETTINGS = Settings(user_insts=4_000, warmup_insts=1_500, max_cycles=8_000_000)


def build_emul_kernel(base: int = DEFAULT_BASE):
    """A hashing kernel whose hot loop uses the emulated popcount."""
    source = f"""
main:
    li    r10, 2463534242
    li    r20, {LCG_MUL}
    li    r21, {LCG_ADD}
    li    r16, 0
loop:
    mul   r10, r10, r20
    add   r10, r10, r21
    emul  r2, r10            ; software-emulated popcount
    add   r16, r16, r2
    srl   r3, r10, 17
    xor   r4, r3, r2
    add   r5, r4, r16
    jmp   loop
"""
    return make_program(source)


def _measure(mechanism: str, idle: int = 1) -> tuple[int, int]:
    sim = Simulator(
        build_emul_kernel(),
        MachineConfig(mechanism=mechanism, idle_threads=idle),
    )
    result = sim.run(
        user_insts=SETTINGS.user_insts,
        warmup_insts=SETTINGS.warmup_insts,
        max_cycles=SETTINGS.max_cycles,
    )
    emulations = result.mech.emulations if result.mech else 0
    return result.cycles, emulations


def test_generalized_mechanism_emulation(benchmark):
    def run():
        perfect, _ = _measure("perfect")
        out = {"perfect": (perfect, 0)}
        for mech in ("traditional", "multithreaded", "quickstart"):
            out[mech] = _measure(mech)
        return out

    result = run_once(benchmark, run)
    perfect = result["perfect"][0]
    print()
    for mech, (cycles, emulations) in result.items():
        if mech == "perfect":
            print(f"{mech:14s}: {cycles:7d} cycles (native popcount)")
        else:
            penalty = (cycles - perfect) / max(1, emulations)
            print(f"{mech:14s}: {cycles:7d} cycles, {emulations:5d} emulations, "
                  f"{penalty:5.1f} penalty cycles/emulation")

    trad = result["traditional"][0]
    multi = result["multithreaded"][0]
    quick = result["quickstart"][0]
    # The Section 6 shape: the multithreaded mechanism beats the trap.
    # Quick-start matches it at worst: with emulations arriving
    # back-to-back the context is rarely idle long enough to prefetch,
    # so the image is usually partial (the paper's own caveat).
    assert multi < trad
    assert quick <= multi * 1.02
    # All mechanisms emulate the same dynamic stream; whole-run counts
    # differ only by the run-end overshoot (retirement bursts).
    trad_emuls = result["traditional"][1]
    multi_emuls = result["multithreaded"][1]
    assert abs(trad_emuls - multi_emuls) <= 0.1 * max(trad_emuls, multi_emuls)
