"""Figure 3: relative TLB overhead vs superscalar width."""

from benchmarks.conftest import run_once
from repro.experiments import fig3_width


def test_fig3_width_sweep(benchmark, settings):
    result = run_once(benchmark, fig3_width.run, settings)
    print()
    print(result.format_table(value="relative_overhead"))

    grew = 0
    for bench in settings.benchmarks:
        norm = fig3_width.normalized_overheads(result, bench)
        print(f"{bench:12s} normalised: " +
              " ".join(f"{norm[l]:.2f}" for l in ("2-wide", "4-wide", "8-wide")))
        if norm["8-wide"] > 1.0:
            grew += 1
    # The paper's shape: wider machines spend a larger fraction of time
    # on TLB handling, for (nearly) every benchmark.
    assert grew >= len(settings.benchmarks) - 1
