"""Figure 7: three application threads plus one idle context."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_multiprogram


def test_fig7_multiprogrammed_mixes(benchmark, settings):
    result = run_once(benchmark, fig7_multiprogram.run, settings)
    print()
    print(result.format_table())

    trad = result.average_penalty("traditional")
    mt = result.average_penalty("multithreaded(1)")
    qs = result.average_penalty("quick start(1)")
    if trad > 0:
        print(f"\nreduction: {100 * (trad - mt) / trad:.0f}% multithreaded, "
              f"{100 * (trad - qs) / trad:.0f}% quick-start "
              f"(paper: 25% / 30%)")

    # Shape: traditional is still the worst on average; multithreading
    # helps, but the SMT's own latency tolerance shrinks the benefit
    # relative to single-application runs.
    assert mt < trad
    assert qs <= trad
