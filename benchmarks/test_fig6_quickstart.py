"""Figure 6: the quick-starting multithreaded implementation."""

from benchmarks.conftest import run_once
from repro.experiments import fig6_quickstart


def test_fig6_quickstart(benchmark, settings):
    result = run_once(benchmark, fig6_quickstart.run, settings)
    print()
    print(result.format_table())

    mt = result.average_penalty("multithreaded(1)")
    qs = result.average_penalty("quick start(1)")
    hw = result.average_penalty("hardware")
    recovered = (mt - qs) / (mt - hw) if mt > hw else 0.0
    print(f"\nquick-start recovers {100 * recovered:.0f}% of the mt->hw gap "
          f"(paper: ~68-80%)")

    # Shape: hardware < quick-start < multithreaded, with a meaningful
    # recovery of the gap.
    assert hw < qs < mt
    assert recovered > 0.2
