"""Figure 2: traditional trap overhead vs pipeline length."""

from benchmarks.conftest import run_once
from repro.experiments import fig2_pipeline


def test_fig2_pipeline_depth_sweep(benchmark, settings):
    result = run_once(benchmark, fig2_pipeline.run, settings)
    print()
    print(result.format_table())

    for bench in settings.benchmarks:
        shallow = result.cell(bench, "3 stages").penalty_per_miss
        nominal = result.cell(bench, "7 stages").penalty_per_miss
        deep = result.cell(bench, "11 stages").penalty_per_miss
        # The paper's shape: penalty grows with depth for every benchmark.
        assert shallow < deep, bench
        assert nominal <= deep * 1.15, bench

    # Suite-average slope ~2 cycles per added stage (paper Section 3).
    avg3 = result.average_penalty("3 stages")
    avg11 = result.average_penalty("11 stages")
    slope = (avg11 - avg3) / 8
    print(f"\nslope = {slope:.2f} cycles/stage (paper: ~2)")
    assert 1.0 < slope < 3.5
