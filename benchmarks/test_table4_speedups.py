"""Table 4: speedups over traditional software handling."""

from benchmarks.conftest import run_once
from repro.experiments import table4_speedups


def test_table4_speedups(benchmark, settings):
    rows = run_once(benchmark, table4_speedups.run, settings)
    print()
    for row in rows:
        cells = " ".join(
            f"{label}={row.speedups[label]:+.1f}%"
            for label in table4_speedups.COLUMNS
        )
        print(f"{row.benchmark:12s} ipc={row.base_ipc:.2f} "
              f"misses={row.tlb_misses:5d} {cells}")

    for row in rows:
        # Perfect TLB is the upper bound and must beat traditional.
        assert row.speedups["Perfect"] > 0, row.benchmark
        # The paper's Table 4: every alternative mechanism speeds the
        # miss-heavy benchmarks up over traditional.
        if row.tlb_misses > 50:
            assert row.speedups["Multi(1)"] > -1.0, row.benchmark
            assert row.speedups["H/W"] > 0, row.benchmark
        # Perfect bounds everything (within noise).
        for label in ("H/W", "Multi(1)", "Multi(3)", "Quick(1)", "Quick(3)"):
            assert row.speedups[label] <= row.speedups["Perfect"] + 2.0
