"""Benchmark-harness fixtures.

Each ``benchmarks/test_*.py`` regenerates one of the paper's tables or
figures, timed via pytest-benchmark (single round: a figure regeneration
is itself a long deterministic measurement, not a microbenchmark).

Run lengths honour ``REPRO_SCALE`` (default 1).  Set ``REPRO_SCALE=4``
or more for measurement-grade tables at the cost of proportionally
longer wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Settings


@pytest.fixture(scope="session")
def settings() -> Settings:
    return Settings.from_env()


def run_once(benchmark, fn, *args):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
