"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of mechanisms the paper
describes qualitatively:

* handler-length prediction (Section 4.4's ~0.5 cycles/miss of wasted
  fetch without it),
* handler fetch priority (Section 4.4's prioritisation argument),
* hardware-walker FSM latency (how aggressive must the walker be),
* DTLB reach (the Section 2 motivation: misses come from TLB reach),
* window size (how much latency tolerance hides miss cost).
"""

import dataclasses

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import Settings, penalty_table
from repro.sim.config import MachineConfig

ABLATION_SETTINGS = Settings(
    user_insts=6_000, warmup_insts=2_000, max_cycles=8_000_000,
    benchmarks=("compress", "vortex", "murphi"),
)


def _suite_penalty(configs, reference_label):
    rows = []
    for name in ABLATION_SETTINGS.benchmarks:
        rows.extend(
            penalty_table(name, configs, ABLATION_SETTINGS,
                          reference_label=reference_label)
        )
    by_label = {}
    for row in rows:
        by_label.setdefault(row.label, []).append(row.penalty_per_miss)
    return {label: sum(v) / len(v) for label, v in by_label.items()}


def test_handler_length_prediction(benchmark):
    """Without length prediction the handler thread overfetches past
    reti, wasting fetch bandwidth (Section 4.4)."""
    def run():
        return _suite_penalty(
            {
                "predicted": MachineConfig(mechanism="multithreaded"),
                "overfetch": MachineConfig(
                    mechanism="multithreaded", predict_handler_length=False
                ),
            },
            reference_label="predicted",
        )

    result = run_once(benchmark, run)
    print(f"\nhandler length prediction: {result}")
    # Overfetch costs something, but bounded (the paper: ~0.5 cycles).
    assert result["overfetch"] >= result["predicted"] - 0.3
    assert result["overfetch"] - result["predicted"] < 4.0


def test_handler_fetch_priority(benchmark):
    """Handler threads must outrank application threads for fetch."""
    def run():
        return _suite_penalty(
            {
                "priority": MachineConfig(mechanism="multithreaded"),
                "no-priority": MachineConfig(
                    mechanism="multithreaded", handler_fetch_priority=False
                ),
            },
            reference_label="priority",
        )

    result = run_once(benchmark, run)
    print(f"\nhandler fetch priority: {result}")
    assert result["no-priority"] >= result["priority"] - 0.5


def test_walker_latency_sweep(benchmark):
    """The hardware walker's advantage degrades with FSM latency."""
    def run():
        return _suite_penalty(
            {
                f"walker+{lat}": MachineConfig(
                    mechanism="hardware", walker_latency=lat
                )
                for lat in (0, 4, 16, 48)
            },
            reference_label="walker+4",
        )

    result = run_once(benchmark, run)
    print(f"\nwalker latency sweep: {result}")
    assert result["walker+0"] <= result["walker+16"] <= result["walker+48"]


def test_dtlb_reach_sweep(benchmark):
    """Growing the DTLB removes the misses themselves (Section 2: the
    orthogonal attack the paper is *not* taking)."""
    def run():
        out = {}
        for entries in (32, 64, 256):
            config = MachineConfig(mechanism="multithreaded",
                                   dtlb_entries=entries)
            rows = []
            for name in ABLATION_SETTINGS.benchmarks:
                rows.extend(
                    penalty_table(name, {"m": config}, ABLATION_SETTINGS)
                )
            out[entries] = sum(r.committed_fills for r in rows)
        return out

    result = run_once(benchmark, run)
    print(f"\nDTLB reach sweep (total fills): {result}")
    assert result[32] > result[64] > result[256]


def test_window_size_hides_miss_latency(benchmark):
    """A larger window tolerates more of each miss's latency."""
    def run():
        return _suite_penalty(
            {
                "win32": MachineConfig(mechanism="hardware", window_size=32),
                "win128": MachineConfig(mechanism="hardware", window_size=128),
            },
            reference_label="win128",
        )

    result = run_once(benchmark, run)
    print(f"\nwindow size: {result}")
    assert result["win32"] >= result["win128"] - 0.5
