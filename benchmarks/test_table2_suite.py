"""Table 2: benchmark suite summary."""

from benchmarks.conftest import run_once
from repro.experiments import table2_suite


def test_table2_benchmark_summary(benchmark, settings):
    rows = run_once(benchmark, table2_suite.run, settings)
    print()
    for row in rows:
        print(f"{row.name:12s} {row.abbrev:4s} misses={row.tlb_misses:5d} "
              f"({row.misses_per_kilo_inst:5.1f}/kinst) ipc={row.base_ipc:.2f}")

    by_name = {row.name: row for row in rows}
    # The paper's Table 2 ordering at the extremes: compress the most
    # miss-heavy, alphadoom the least.
    if {"compress", "alphadoom"} <= set(by_name):
        assert (
            by_name["compress"].misses_per_kilo_inst
            > by_name["alphadoom"].misses_per_kilo_inst
        )
    for row in rows:
        assert row.tlb_misses > 0
        assert row.base_ipc > 0.3
